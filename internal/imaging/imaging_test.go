package imaging

import (
	"math"
	"testing"

	"lotus/internal/rng"
)

func TestSynthesizeImageDeterministic(t *testing.T) {
	a := SynthesizeImage(64, 48, 7)
	b := SynthesizeImage(64, 48, 7)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := SynthesizeImage(64, 48, 8)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical images")
	}
}

func TestTensorRoundTrip(t *testing.T) {
	im := SynthesizeImage(37, 23, 1)
	back := FromTensor(im.ToTensor())
	for i := range im.Pix {
		if im.Pix[i] != back.Pix[i] {
			t.Fatal("ToTensor/FromTensor round trip corrupted pixels")
		}
	}
}

func TestSJPGRoundTripQuality(t *testing.T) {
	im := SynthesizeImage(96, 64, 42)
	for _, q := range []int{50, 75, 90} {
		data := EncodeSJPG(im, q)
		dec, err := DecodeSJPG(data)
		if err != nil {
			t.Fatalf("decode at q=%d: %v", q, err)
		}
		if dec.W != im.W || dec.H != im.H {
			t.Fatalf("q=%d: decoded %dx%d, want %dx%d", q, dec.W, dec.H, im.W, im.H)
		}
		psnr := PSNR(im, dec)
		if psnr < 25 {
			t.Fatalf("q=%d: PSNR %.1f dB too low for a working codec", q, psnr)
		}
	}
}

func TestSJPGHigherQualityHigherFidelityAndSize(t *testing.T) {
	im := SynthesizeImage(128, 96, 3)
	low := EncodeSJPG(im, 30)
	high := EncodeSJPG(im, 95)
	if len(high) <= len(low) {
		t.Fatalf("q=95 output (%d B) not larger than q=30 (%d B)", len(high), len(low))
	}
	dl, _ := DecodeSJPG(low)
	dh, _ := DecodeSJPG(high)
	if PSNR(im, dh) <= PSNR(im, dl) {
		t.Fatalf("higher quality produced lower PSNR (%.1f <= %.1f)", PSNR(im, dh), PSNR(im, dl))
	}
}

func TestSJPGCompresses(t *testing.T) {
	im := SynthesizeImage(256, 256, 11)
	data := EncodeSJPG(im, 85)
	if len(data) >= im.Bytes() {
		t.Fatalf("encoded %d B >= raw %d B; codec does not compress", len(data), im.Bytes())
	}
}

func TestSJPGNonMultipleOf8(t *testing.T) {
	im := SynthesizeImage(33, 17, 5)
	dec, err := DecodeSJPG(EncodeSJPG(im, 90))
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 33 || dec.H != 17 {
		t.Fatalf("decoded %dx%d", dec.W, dec.H)
	}
	if PSNR(im, dec) < 25 {
		t.Fatalf("PSNR %.1f too low", PSNR(im, dec))
	}
}

func TestSJPGDims(t *testing.T) {
	data := EncodeSJPG(SynthesizeImage(40, 30, 1), 80)
	w, h, err := SJPGDims(data)
	if err != nil || w != 40 || h != 30 {
		t.Fatalf("SJPGDims = (%d, %d, %v)", w, h, err)
	}
}

func TestSJPGRejectsGarbage(t *testing.T) {
	if _, err := DecodeSJPG([]byte("NOPE")); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := DecodeSJPG([]byte{}); err == nil {
		t.Fatal("expected error on empty input")
	}
	good := EncodeSJPG(SynthesizeImage(16, 16, 1), 80)
	if _, err := DecodeSJPG(good[:len(good)/2]); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestDCTInverse(t *testing.T) {
	var blk, orig [64]int32
	for i := range blk {
		blk[i] = int32((i*37)%251) - 128
		orig[i] = blk[i]
	}
	fdct8x8(&blk)
	idct8x8(&blk)
	for i := range blk {
		// Fixed-point forward+inverse round trip: each pass rounds once,
		// so samples may move by one intensity level but no more.
		if absInt(int(blk[i])-int(orig[i])) > 1 {
			t.Fatalf("DCT not invertible at %d: %v vs %v", i, blk[i], orig[i])
		}
	}
}

func TestColorConversionInverse(t *testing.T) {
	for _, px := range [][3]uint8{{0, 0, 0}, {255, 255, 255}, {200, 30, 90}, {12, 240, 5}} {
		y, cb, cr := rgbToYCbCr(px[0], px[1], px[2])
		r, g, b := yCbCrToRGB(y, cb, cr)
		if absInt(int(r)-int(px[0])) > 1 || absInt(int(g)-int(px[1])) > 1 || absInt(int(b)-int(px[2])) > 1 {
			t.Fatalf("round trip %v -> (%d,%d,%d)", px, r, g, b)
		}
	}
}

func TestResizePreservesConstantImage(t *testing.T) {
	im := NewImage(50, 40)
	for i := range im.Pix {
		im.Pix[i] = 77
	}
	out := Resize(im, 23, 31)
	if out.W != 23 || out.H != 31 {
		t.Fatalf("resized to %dx%d", out.W, out.H)
	}
	for i, v := range out.Pix {
		if v != 77 {
			t.Fatalf("pixel %d = %d, want 77 (filter weights must sum to 1)", i, v)
		}
	}
}

func TestResizeDownUpApproximation(t *testing.T) {
	im := SynthesizeImage(64, 64, 9)
	// Down 2x then up 2x should stay recognizably similar for smooth content.
	down := Resize(im, 32, 32)
	up := Resize(down, 64, 64)
	if p := PSNR(im, up); p < 20 {
		t.Fatalf("down/up PSNR %.1f dB too low", p)
	}
}

func TestPrecomputeCoeffsNormalized(t *testing.T) {
	for _, c := range []struct{ src, dst int }{{100, 50}, {50, 100}, {224, 224}, {7, 3}} {
		rc := PrecomputeCoeffs(c.src, c.dst)
		for i := 0; i < c.dst; i++ {
			ws := rc.TapsFor(i)
			var sum int64
			for _, w := range ws {
				sum += int64(w)
			}
			// Each tap is rounded independently after normalization, so the
			// fixed-point sum may drift from 1.0 by up to half an ulp per tap.
			if d := sum - coeffOne; d > int64(len(ws)) || d < -int64(len(ws)) {
				t.Fatalf("%d->%d: taps at %d sum to %d (want ~%d)", c.src, c.dst, i, sum, int64(coeffOne))
			}
			if rc.Bounds[i] < 0 || int(rc.Bounds[i])+len(ws) > c.src {
				t.Fatalf("%d->%d: taps at %d out of range", c.src, c.dst, i)
			}
		}
	}
}

func TestCrop(t *testing.T) {
	im := SynthesizeImage(20, 20, 2)
	c := Crop(im, 5, 7, 6, 4)
	if c.W != 6 || c.H != 4 {
		t.Fatalf("crop is %dx%d", c.W, c.H)
	}
	r0, g0, b0 := im.At(5, 7)
	r1, g1, b1 := c.At(0, 0)
	if r0 != r1 || g0 != g1 || b0 != b1 {
		t.Fatal("crop origin pixel mismatch")
	}
}

func TestCropOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Crop(SynthesizeImage(10, 10, 1), 5, 5, 10, 10)
}

func TestFlipHorizontal(t *testing.T) {
	im := SynthesizeImage(11, 5, 3)
	f := FlipHorizontal(im)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r0, g0, b0 := im.At(x, y)
			r1, g1, b1 := f.At(im.W-1-x, y)
			if r0 != r1 || g0 != g1 || b0 != b1 {
				t.Fatalf("flip mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestAdjustBrightness(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, 100, 100, 100)
	im.Set(1, 0, 200, 200, 200)
	out := AdjustBrightness(im, 1.5)
	if r, _, _ := out.At(0, 0); r != 150 {
		t.Fatalf("brightness 1.5 of 100 = %d", r)
	}
	if r, _, _ := out.At(1, 0); r != 255 {
		t.Fatalf("brightness must clamp, got %d", r)
	}
}

func TestRandomResizedCropParamsInBounds(t *testing.T) {
	r := rng.New(1, "rrc")
	for i := 0; i < 500; i++ {
		x0, y0, cw, ch := RandomResizedCropParams(123, 87, r)
		if cw <= 0 || ch <= 0 || x0 < 0 || y0 < 0 || x0+cw > 123 || y0+ch > 87 {
			t.Fatalf("crop params out of bounds: %d,%d %dx%d", x0, y0, cw, ch)
		}
	}
}

func TestVolumeCropAndFlip(t *testing.T) {
	v := SynthesizeVolume(8, 10, 12, 4)
	c := CropVolume(v, 1, 2, 3, 4, 5, 6)
	if c.D != 4 || c.H != 5 || c.W != 6 {
		t.Fatalf("crop dims %dx%dx%d", c.D, c.H, c.W)
	}
	if c.Vox[0] != v.Vox[(1*v.H+2)*v.W+3] {
		t.Fatal("crop origin voxel mismatch")
	}
	for axis := 0; axis < 3; axis++ {
		orig := append([]float32(nil), v.Vox...)
		FlipVolumeAxis(FlipVolumeAxis(v, axis), axis)
		for i := range orig {
			if v.Vox[i] != orig[i] {
				t.Fatalf("axis %d double-flip not identity", axis)
			}
		}
	}
}

func TestForegroundCenterFindsBlob(t *testing.T) {
	v := SynthesizeVolume(16, 16, 16, 99)
	z, y, x, ok := v.ForegroundCenter(100)
	if !ok {
		t.Fatal("no foreground found in synthesized volume")
	}
	if z < 0 || z >= 16 || y < 0 || y >= 16 || x < 0 || x >= 16 {
		t.Fatalf("center (%d,%d,%d) out of range", z, y, x)
	}
	// The synthesized blob is bright (up to ~200); background is ~20.
	if v.Vox[(z*16+y)*16+x] <= 100 {
		t.Fatal("centroid voxel is not foreground")
	}
}

func TestForegroundCenterEmpty(t *testing.T) {
	v := NewVolume(4, 4, 4)
	if _, _, _, ok := v.ForegroundCenter(1); ok {
		t.Fatal("empty volume reported foreground")
	}
}

func TestGaussianNoiseChangesStats(t *testing.T) {
	v := NewVolume(8, 8, 8)
	AddGaussianNoise(v, 5, rng.New(3, "gn"))
	var sumsq float64
	for _, x := range v.Vox {
		sumsq += float64(x) * float64(x)
	}
	sd := math.Sqrt(sumsq / float64(len(v.Vox)))
	if sd < 3 || sd > 7 {
		t.Fatalf("noise stddev %.2f, want ~5", sd)
	}
}

func TestScaleVolume(t *testing.T) {
	v := NewVolume(2, 2, 2)
	for i := range v.Vox {
		v.Vox[i] = 2
	}
	ScaleVolume(v, 1.5)
	for _, x := range v.Vox {
		if x != 3 {
			t.Fatalf("scaled voxel = %v", x)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestSJPG420RoundTrip(t *testing.T) {
	im := SynthesizeImage(97, 66, 21)
	data := EncodeSJPGSubsampled(im, 90, Sub420)
	dec, err := DecodeSJPG(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != im.W || dec.H != im.H {
		t.Fatalf("decoded %dx%d", dec.W, dec.H)
	}
	if p := PSNR(im, dec); p < 24 {
		t.Fatalf("4:2:0 PSNR %.1f dB too low", p)
	}
}

func TestSJPG420SmallerThan444(t *testing.T) {
	im := SynthesizeImage(128, 128, 22)
	full := EncodeSJPGSubsampled(im, 85, Sub444)
	sub := EncodeSJPGSubsampled(im, 85, Sub420)
	if len(sub) >= len(full) {
		t.Fatalf("4:2:0 (%d B) should be smaller than 4:4:4 (%d B)", len(sub), len(full))
	}
	// Chroma halving cuts the two chroma planes to ~1/4: expect a clear
	// saving but not below 40% of the 4:4:4 size.
	if len(sub) < len(full)*2/5 {
		t.Fatalf("4:2:0 implausibly small: %d vs %d", len(sub), len(full))
	}
}

func TestSJPG420ChromaFidelityBelow444(t *testing.T) {
	im := SynthesizeImage(96, 96, 23)
	d444, _ := DecodeSJPG(EncodeSJPGSubsampled(im, 90, Sub444))
	d420, _ := DecodeSJPG(EncodeSJPGSubsampled(im, 90, Sub420))
	if PSNR(im, d420) > PSNR(im, d444) {
		t.Fatalf("4:2:0 (%.1f dB) cannot beat 4:4:4 (%.1f dB)", PSNR(im, d420), PSNR(im, d444))
	}
}

func TestUpsampleDownsampleApproxIdentity(t *testing.T) {
	// Down then up on a smooth plane stays close.
	w, h := 40, 30
	plane := make([]int32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			plane[y*w+x] = int32(x + y)
		}
	}
	down, dw, dh := downsample2x(plane, w, h)
	up := upsample2x(down, dw, dh, w, h)
	var worst int
	for i := range plane {
		if d := absInt(int(up[i]) - int(plane[i])); d > worst {
			worst = d
		}
	}
	if worst > 2 {
		t.Fatalf("down/up max error %d on a linear ramp", worst)
	}
}

func TestBicubicCoeffsNormalizedAndWider(t *testing.T) {
	bl := PrecomputeCoeffsFilter(100, 50, Bilinear)
	bc := PrecomputeCoeffsFilter(100, 50, Bicubic)
	for i := 0; i < 50; i++ {
		ws := bc.TapsFor(i)
		var sum int64
		for _, w := range ws {
			sum += int64(w)
		}
		if d := sum - coeffOne; d > int64(len(ws)) || d < -int64(len(ws)) {
			t.Fatalf("bicubic taps at %d sum to %d (want ~%d)", i, sum, int64(coeffOne))
		}
		if len(ws) <= len(bl.TapsFor(i)) {
			t.Fatalf("bicubic taps (%d) should exceed bilinear (%d)", len(ws), len(bl.TapsFor(i)))
		}
	}
}

func TestBicubicSharperThanBilinearOnUpscale(t *testing.T) {
	// Down 2x, then upscale back with each filter: the cubic reconstruction
	// should recover the original at least as faithfully.
	im := SynthesizeImage(96, 96, 31)
	down := Resize(im, 48, 48)
	upBL := ResizeWith(down, 96, 96, Bilinear)
	upBC := ResizeWith(down, 96, 96, Bicubic)
	if PSNR(im, upBC) < PSNR(im, upBL)-0.5 {
		t.Fatalf("bicubic PSNR %.2f well below bilinear %.2f", PSNR(im, upBC), PSNR(im, upBL))
	}
}

func TestBicubicPreservesConstant(t *testing.T) {
	im := NewImage(40, 40)
	for i := range im.Pix {
		im.Pix[i] = 123
	}
	out := ResizeWith(im, 27, 31, Bicubic)
	for i, v := range out.Pix {
		if v != 123 {
			t.Fatalf("pixel %d = %d; cubic weights must sum to 1", i, v)
		}
	}
}
