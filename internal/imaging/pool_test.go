package imaging

import (
	"sync"
	"testing"
)

// TestPoolReleaseDoesNotAliasLiveResults: an operation's pooled result must
// stay intact after its inputs are released and the pool is churned — the
// ownership rule the pipeline relies on when it releases a sample's old
// payload right after a transform.
func TestPoolReleaseDoesNotAliasLiveResults(t *testing.T) {
	src := SynthesizeImage(128, 96, 3)
	out := Resize(src, 64, 48)
	snapshot := make([]uint8, len(out.Pix))
	copy(snapshot, out.Pix)
	src.Release()

	// Churn the pool hard: every Get here may reuse src's retired buffer,
	// but must never reuse out's.
	for i := 0; i < 50; i++ {
		im := GetImage(128, 96)
		for j := range im.Pix {
			im.Pix[j] = uint8(i * 13)
		}
		im.Release()
	}
	for i, v := range out.Pix {
		if v != snapshot[i] {
			t.Fatalf("live resize result mutated at %d: %d != %d (pool aliased a released buffer)", i, v, snapshot[i])
		}
	}
	out.Release()
}

// TestPoolDoubleReleaseSafe: Release is documented as idempotent.
func TestPoolDoubleReleaseSafe(t *testing.T) {
	im := GetImage(8, 8)
	im.Release()
	im.Release() // must be a no-op
	v := GetVolume(2, 3, 4)
	v.Release()
	v.Release()
	var nilIm *Image
	nilIm.Release()
	var nilVol *Volume
	nilVol.Release()
}

// TestPoolConcurrentDistinctBuffers hammers the pool from many goroutines,
// each stamping its buffers with a goroutine-unique pattern and verifying
// the pattern survives until its own Release. Run under -race this also
// proves Get/Release carry no data races.
func TestPoolConcurrentDistinctBuffers(t *testing.T) {
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(tag uint8) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				im := GetImage(32+int(tag), 16)
				for j := range im.Pix {
					im.Pix[j] = tag
				}
				vol := GetVolume(4, 8, 8+int(tag))
				for j := range vol.Vox {
					vol.Vox[j] = float32(tag)
				}
				for j := range im.Pix {
					if im.Pix[j] != tag {
						errs <- "image buffer shared across goroutines"
						return
					}
				}
				for j := range vol.Vox {
					if vol.Vox[j] != float32(tag) {
						errs <- "volume buffer shared across goroutines"
						return
					}
				}
				im.Release()
				vol.Release()
			}
		}(uint8(g + 1))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestPooledOpsRoundTrip exercises the pooled op results end to end:
// synthesize -> encode -> decode -> crop -> resize -> flip, releasing every
// intermediate, and checks the final dimensions and that buffers recycle
// without corrupting the final image.
func TestPooledOpsRoundTrip(t *testing.T) {
	src := SynthesizeImage(200, 150, 9)
	blob := EncodeSJPGSubsampled(src, 85, Sub420)
	src.Release()
	dec, err := DecodeSJPG(blob)
	if err != nil {
		t.Fatal(err)
	}
	crop := Crop(dec, 10, 10, 128, 96)
	dec.Release()
	out := Resize(crop, 64, 64)
	crop.Release()
	FlipHorizontalInPlace(out)
	if out.W != 64 || out.H != 64 || len(out.Pix) != 64*64*3 {
		t.Fatalf("unexpected output geometry %dx%d len %d", out.W, out.H, len(out.Pix))
	}
	sum := 0
	for _, v := range out.Pix {
		sum += int(v)
	}
	if sum == 0 {
		t.Fatal("output image is all zero — pooled buffer not filled")
	}
	out.Release()
}
