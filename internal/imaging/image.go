// Package imaging implements the real pixel-processing kernels behind the
// preprocessing operations: a simplified JPEG-style codec (color conversion,
// 8x8 DCT, quantization, zigzag run-length entropy coding), separable
// bilinear resampling with coefficient precomputation, cropping, flipping,
// brightness adjustment, and Gaussian noise — for both 2-D RGB images and
// 3-D volumes.
//
// The algorithms are faithful simplifications of the libjpeg / Pillow code
// paths the paper profiles, so that the relative costs of the preprocessing
// operations (decode >> resample >> normalize >> flip) match the shape the
// paper reports, and so the native-kernel layer has real work to attribute.
package imaging

import (
	"fmt"

	"lotus/internal/tensor"
)

// Image is an interleaved 8-bit RGB image, row-major: Pix[(y*W+x)*3+c].
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) (r, g, b uint8) {
	i := (y*im.W + x) * 3
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, r, g, b uint8) {
	i := (y*im.W + x) * 3
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: append([]uint8(nil), im.Pix...)}
	return out
}

// Bytes returns the raw buffer size.
func (im *Image) Bytes() int { return len(im.Pix) }

// ToTensor converts to a [3, H, W] planar uint8 tensor (the layout the
// ToTensor transform produces before scaling). The Pillow kernel doing this
// unpack is ImagingUnpackRGB.
func (im *Image) ToTensor() *tensor.Tensor {
	t := tensor.Zeros(tensor.Uint8, 3, im.H, im.W)
	plane := im.H * im.W
	r, g, b := t.U8[:plane], t.U8[plane:2*plane], t.U8[2*plane:]
	p := im.Pix
	for j := 0; j < plane; j++ {
		r[j] = p[j*3]
		g[j] = p[j*3+1]
		b[j] = p[j*3+2]
	}
	return t
}

// u8ToF32 is the uint8 -> [0,1] float32 conversion table. Indexing it is
// what keeps ToFloat32Tensor bit-identical to ToTensor().ToFloat32(): both
// compute float32(v)/255 — one ahead of time, one per pixel.
var u8ToF32 [256]float32

func init() {
	for i := range u8ToF32 {
		u8ToF32[i] = float32(i) / 255
	}
}

// ToFloat32Tensor converts directly to the [3, H, W] float32 tensor that
// ToTensor().ToFloat32() would produce, without materializing the
// intermediate planar uint8 tensor — the fused unpack+convert the real
// ToTensor transform runs per sample.
func (im *Image) ToFloat32Tensor() *tensor.Tensor {
	t := tensor.Zeros(tensor.Float32, 3, im.H, im.W)
	plane := im.H * im.W
	r, g, b := t.F32[:plane], t.F32[plane:2*plane], t.F32[2*plane:]
	p := im.Pix
	for j := 0; j < plane; j++ {
		r[j] = u8ToF32[p[j*3]]
		g[j] = u8ToF32[p[j*3+1]]
		b[j] = u8ToF32[p[j*3+2]]
	}
	return t
}

// FromTensor converts a [3, H, W] uint8 tensor back to an interleaved image.
func FromTensor(t *tensor.Tensor) *Image {
	if len(t.Shape) != 3 || t.Shape[0] != 3 || t.Dtype != tensor.Uint8 {
		panic(fmt.Sprintf("imaging: FromTensor needs [3,H,W] uint8, got %v", t))
	}
	h, w := t.Shape[1], t.Shape[2]
	im := NewImage(w, h)
	plane := h * w
	for j := 0; j < plane; j++ {
		im.Pix[j*3] = t.U8[j]
		im.Pix[j*3+1] = t.U8[plane+j]
		im.Pix[j*3+2] = t.U8[2*plane+j]
	}
	return im
}

// SynthesizeImage deterministically fills an image with structured content
// (gradients plus texture) derived from a seed. Structured content compresses
// like a natural photo, which keeps encoded-size vs pixel-count relationships
// realistic for the synthetic datasets.
func SynthesizeImage(w, h int, seed int64) *Image {
	// Pooled: every pixel is written below, so the undefined initial
	// contents never leak. Callers on the hot path Release the image.
	im := GetImage(w, h)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for y := 0; y < h; y++ {
		row := im.Pix[y*w*3 : (y+1)*w*3]
		ybase := y * 255 / max(1, h-1)
		for x := 0; x < w; x++ {
			// Smooth base gradients with a block texture overlaid.
			base := (x*255/max(1, w-1) + ybase) / 2
			s = s*6364136223846793005 + 1442695040888963407
			noise := int((s>>33)&15) - 8
			blk := int((uint(x/16)*7+uint(y/16)*13)%32) - 16
			row[x*3] = clamp8(base + blk + noise)
			row[x*3+1] = clamp8(base - blk/2 + noise)
			row[x*3+2] = clamp8(255 - base + noise)
		}
	}
	return im
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
