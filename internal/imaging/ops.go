package imaging

import (
	"container/list"
	"fmt"
	"math"
	"sync"

	"lotus/internal/rng"
)

// Fixed-point resampling, following Pillow's 8bpc scheme
// (ImagingResampleHorizontal_8bpc): filter taps are precomputed as int32
// values scaled by 1<<coeffPrecision, each output sample accumulates
// tap*pixel products into an int32 with a single pre-added rounding half,
// and the final shift-and-clip produces the byte. Two bits of headroom are
// reserved because cubic filters have negative lobes (per-window tap sums
// can exceed 1.0).
const (
	coeffPrecision = 32 - 8 - 2
	coeffOne       = 1 << coeffPrecision
	coeffHalf      = 1 << (coeffPrecision - 1)
)

// ResampleCoeffs holds the precomputed filter taps for one output axis —
// the analogue of Pillow's precompute_coeffs, which Table I lists under
// RandomResizedCrop on AMD. Taps is a flat [dstLen * KSize] fixed-point
// buffer (KSize-strided, zero-padded) rather than a jagged [][]float64 so
// a whole axis's coefficients live in two contiguous allocations.
type ResampleCoeffs struct {
	// KSize is the tap stride: the maximum taps any output sample uses.
	KSize int
	// Bounds[i] is the first source index contributing to output i.
	Bounds []int32
	// Counts[i] is the number of taps output i actually uses (edge windows
	// are narrower than KSize).
	Counts []int32
	// Taps holds KSize fixed-point taps per output, scaled by coeffOne.
	Taps []int32
	// NonNeg reports that every tap is >= 0 (true for box/triangle filters,
	// false for cubics with negative lobes). Non-negative taps allow the
	// two-lane packed accumulation fast path: two channel accumulators share
	// one uint64 because no intermediate sum can go negative or carry across
	// the 32-bit lane boundary.
	NonNeg bool
	// TapsP mirrors Taps for the packed fast path: each tap appears three
	// times (once per interleaved channel slot) pre-widened to uint64, so
	// the horizontal inner loop indexes taps and packed pixels with the
	// same stride and the bounds checks fold away. Nil unless NonNeg.
	TapsP []uint64
}

// TapsFor returns output sample i's taps (Counts[i] live entries).
func (rc *ResampleCoeffs) TapsFor(i int) []int32 {
	return rc.Taps[i*rc.KSize : i*rc.KSize+int(rc.Counts[i])]
}

// Filter selects the resampling kernel (Pillow's BILINEAR / BICUBIC).
type Filter int

const (
	// Bilinear is the triangle filter torchvision's RandomResizedCrop uses
	// by default.
	Bilinear Filter = iota
	// Bicubic is the Catmull-Rom-style cubic (a = -0.5), Pillow's BICUBIC.
	Bicubic
)

// support returns the filter radius in source samples.
func (f Filter) support() float64 {
	if f == Bicubic {
		return 2
	}
	return 1
}

// weight evaluates the filter kernel at distance d (in filter units).
func (f Filter) weight(d float64) float64 {
	d = math.Abs(d)
	if f == Bicubic {
		const a = -0.5
		switch {
		case d < 1:
			return (a+2)*d*d*d - (a+3)*d*d + 1
		case d < 2:
			return a*d*d*d - 5*a*d*d + 8*a*d - 4*a
		default:
			return 0
		}
	}
	if d < 1 {
		return 1 - d
	}
	return 0
}

// PrecomputeCoeffs builds bilinear (triangle filter) coefficients for
// resampling srcLen samples to dstLen.
func PrecomputeCoeffs(srcLen, dstLen int) *ResampleCoeffs {
	return PrecomputeCoeffsFilter(srcLen, dstLen, Bilinear)
}

// PrecomputeCoeffsFilter builds coefficients for the given filter. Most
// callers should prefer CachedCoeffs: training pipelines resize every
// sample to the same output geometry, so the table is almost always
// already built.
func PrecomputeCoeffsFilter(srcLen, dstLen int, f Filter) *ResampleCoeffs {
	if srcLen <= 0 || dstLen <= 0 {
		panic(fmt.Sprintf("imaging: invalid resample %d -> %d", srcLen, dstLen))
	}
	scale := float64(srcLen) / float64(dstLen)
	filterScale := scale
	if filterScale < 1 {
		filterScale = 1
	}
	radius := f.support() * filterScale
	ksize := int(math.Ceil(radius))*2 + 1
	rc := &ResampleCoeffs{
		KSize:  ksize,
		Bounds: make([]int32, dstLen),
		Counts: make([]int32, dstLen),
		Taps:   make([]int32, dstLen*ksize),
	}
	ws := make([]float64, ksize)
	rc.NonNeg = true
	for i := 0; i < dstLen; i++ {
		center := (float64(i) + 0.5) * scale
		lo := int(math.Floor(center - radius))
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Ceil(center + radius))
		if hi > srcLen {
			hi = srcLen
		}
		n := hi - lo
		var sum float64
		for j := 0; j < n; j++ {
			d := (float64(lo+j) + 0.5 - center) / filterScale
			w := f.weight(d)
			ws[j] = w
			sum += w
		}
		taps := rc.Taps[i*ksize : (i+1)*ksize]
		if sum != 0 {
			for j := 0; j < n; j++ {
				taps[j] = int32(math.Round(ws[j] / sum * coeffOne))
				if taps[j] < 0 {
					rc.NonNeg = false
				}
			}
		} else {
			taps[0] = coeffOne
		}
		rc.Bounds[i] = int32(lo)
		rc.Counts[i] = int32(n)
	}
	if rc.NonNeg {
		rc.TapsP = make([]uint64, len(rc.Taps)*3)
		for i, t := range rc.Taps {
			ut := uint64(uint32(t))
			rc.TapsP[i*3] = ut
			rc.TapsP[i*3+1] = ut
			rc.TapsP[i*3+2] = ut
		}
	}
	return rc
}

// ---------------------------------------------------------------------------
// Coefficient cache
// ---------------------------------------------------------------------------

// coeffKey identifies one precomputed coefficient table.
type coeffKey struct {
	src, dst int
	f        Filter
}

type coeffEntry struct {
	key coeffKey
	rc  *ResampleCoeffs
}

// coeffLRU is a small LRU cache of coefficient tables. RandomResizedCrop
// resizes every sample to the same output size, so steady-state training
// hits the cache on the vertical axis always and on the horizontal axis
// whenever a crop width repeats. Entries are immutable once built and may
// be shared across goroutines.
type coeffLRU struct {
	mu           sync.Mutex
	cap          int
	m            map[coeffKey]*list.Element
	ll           *list.List
	hits, misses uint64
}

var coeffCache = &coeffLRU{cap: 128, m: make(map[coeffKey]*list.Element), ll: list.New()}

func (c *coeffLRU) get(k coeffKey) *ResampleCoeffs {
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		rc := el.Value.(*coeffEntry).rc
		c.hits++
		c.mu.Unlock()
		return rc
	}
	c.misses++
	c.mu.Unlock()

	// Build outside the lock: tables are deterministic, so a racing build
	// of the same key produces an identical (wasted but harmless) table.
	rc := PrecomputeCoeffsFilter(k.src, k.dst, k.f)

	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		// Lost the race; keep the incumbent so all holders share one table.
		rc = el.Value.(*coeffEntry).rc
	} else {
		c.m[k] = c.ll.PushFront(&coeffEntry{key: k, rc: rc})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*coeffEntry).key)
		}
	}
	c.mu.Unlock()
	return rc
}

// CachedCoeffs returns the (possibly cached) coefficient table for
// resampling srcLen samples to dstLen with the given filter. The result is
// shared and must not be mutated.
func CachedCoeffs(srcLen, dstLen int, f Filter) *ResampleCoeffs {
	return coeffCache.get(coeffKey{src: srcLen, dst: dstLen, f: f})
}

// CoeffCacheStats reports cumulative coefficient-cache hits and misses.
func CoeffCacheStats() (hits, misses uint64) {
	coeffCache.mu.Lock()
	defer coeffCache.mu.Unlock()
	return coeffCache.hits, coeffCache.misses
}

// ---------------------------------------------------------------------------
// Resampling
// ---------------------------------------------------------------------------

// Resize resamples the image to (w, h) with the separable bilinear filter,
// horizontal pass first then vertical — Pillow's
// ImagingResampleHorizontal_8bpc / ImagingResampleVertical_8bpc pair.
// The result is pooled; the caller may Release it when done.
func Resize(im *Image, w, h int) *Image {
	return ResizeWith(im, w, h, Bilinear)
}

// ResizeWith resamples with an explicit filter (bicubic for OD-style
// quality-sensitive resizing). The result is pooled.
func ResizeWith(im *Image, w, h int, f Filter) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid resize %dx%d", w, h))
	}
	switch {
	case w == im.W && h == im.H:
		out := GetImage(w, h)
		copy(out.Pix, im.Pix)
		return out
	case h == im.H:
		out := GetImage(w, h)
		resampleHorizontalInto(out, im, CachedCoeffs(im.W, w, f))
		return out
	case w == im.W:
		out := GetImage(w, h)
		resampleVerticalInto(out, im, CachedCoeffs(im.H, h, f))
		return out
	}
	mid := GetImage(w, im.H)
	resampleHorizontalInto(mid, im, CachedCoeffs(im.W, w, f))
	out := GetImage(w, h)
	resampleVerticalInto(out, mid, CachedCoeffs(im.H, h, f))
	mid.Release()
	return out
}

// clip8 shifts a fixed-point accumulator down to pixel range.
func clip8(v int32) uint8 {
	v >>= coeffPrecision
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// packedHalf seeds both lanes of a packed accumulator with the rounding
// half. Lane layout: low 32 bits hold one channel's sum, high 32 bits the
// other's. With non-negative taps each lane stays below 2^31 (sum of taps is
// coeffOne = 2^22, pixel values <= 255, plus the 2^21 half), so lanes never
// carry into each other and each reads back as a non-negative int32.
const packedHalf = uint64(coeffHalf) | uint64(coeffHalf)<<32

// packable reports whether the packed clamp-free fast path is valid: taps
// must be non-negative, and the window must be narrow enough that per-tap
// rounding slop (up to 0.5 each) cannot push a saturated window past 255
// after the shift — 255*(KSize/2) + coeffHalf must stay under coeffOne.
func (rc *ResampleCoeffs) packable() bool {
	return rc.NonNeg && rc.KSize <= 4096
}

func resampleHorizontalInto(dst, src *Image, rc *ResampleCoeffs) {
	if rc.packable() {
		resampleHorizontalPacked(dst, src, rc)
		return
	}
	w := dst.W
	for y := 0; y < src.H; y++ {
		row := src.Pix[y*src.W*3 : (y+1)*src.W*3]
		orow := dst.Pix[y*w*3 : (y+1)*w*3]
		for x := 0; x < w; x++ {
			base := x * rc.KSize
			n := int(rc.Counts[x])
			si := int(rc.Bounds[x]) * 3
			r, g, b := int32(coeffHalf), int32(coeffHalf), int32(coeffHalf)
			for k := 0; k < n; k++ {
				t := rc.Taps[base+k]
				r += t * int32(row[si])
				g += t * int32(row[si+1])
				b += t * int32(row[si+2])
				si += 3
			}
			o := x * 3
			orow[o] = clip8(r)
			orow[o+1] = clip8(g)
			orow[o+2] = clip8(b)
		}
	}
}

// resampleHorizontalPacked is the non-negative-taps fast path. Horizontal
// taps are identical for every image row, so two consecutive rows ride in
// the two lanes of one uint64 per channel: each tap costs three multiplies
// for six channel samples instead of six. Because normalized non-negative
// taps sum to coeffOne (within rounding that cannot push a 255 pixel past
// 255 after the shift), the lane values are already in 0..255 and the store
// needs no clamp.
func resampleHorizontalPacked(dst, src *Image, rc *ResampleCoeffs) {
	w, sw := dst.W, src.W
	buf := getU64(6 * sw)
	pp, pq := buf[:3*sw], buf[3*sw:]
	y := 0
	// Main loop: four source rows per pass (two lane pairs), so the
	// coefficient loads, loop control, and output bookkeeping are shared by
	// four output pixels per channel.
	for ; y+3 < src.H; y += 4 {
		rowA := src.Pix[y*sw*3 : (y+1)*sw*3]
		rowB := src.Pix[(y+1)*sw*3 : (y+2)*sw*3]
		rowC := src.Pix[(y+2)*sw*3 : (y+3)*sw*3]
		rowD := src.Pix[(y+3)*sw*3 : (y+4)*sw*3]
		rowB = rowB[:len(rowA)]
		rowC = rowC[:len(rowA)]
		rowD = rowD[:len(rowA)]
		ppr := pp[:len(rowA)]
		pqr := pq[:len(rowA)]
		for i, v := range rowA {
			ppr[i] = uint64(v) | uint64(rowB[i])<<32
			pqr[i] = uint64(rowC[i]) | uint64(rowD[i])<<32
		}
		oA := dst.Pix[y*w*3 : (y+1)*w*3]
		oB := dst.Pix[(y+1)*w*3 : (y+2)*w*3]
		oC := dst.Pix[(y+2)*w*3 : (y+3)*w*3]
		oD := dst.Pix[(y+3)*w*3 : (y+4)*w*3]
		for x := 0; x < w; x++ {
			m := int(rc.Counts[x]) * 3
			base3 := x * rc.KSize * 3
			j := int(rc.Bounds[x]) * 3
			ps := pp[j : j+m]
			qs := pq[j : j+m]
			tx := rc.TapsP[base3 : base3+m]
			ra, ga, ba := packedHalf, packedHalf, packedHalf
			rb, gb, bb := packedHalf, packedHalf, packedHalf
			jj := 0
			for ; jj+5 < m; jj += 6 {
				ut0, ut1 := tx[jj], tx[jj+3]
				ra += ut0*ps[jj] + ut1*ps[jj+3]
				ga += ut0*ps[jj+1] + ut1*ps[jj+4]
				ba += ut0*ps[jj+2] + ut1*ps[jj+5]
				rb += ut0*qs[jj] + ut1*qs[jj+3]
				gb += ut0*qs[jj+1] + ut1*qs[jj+4]
				bb += ut0*qs[jj+2] + ut1*qs[jj+5]
			}
			if jj < m {
				ut := tx[jj]
				ra += ut * ps[jj]
				ga += ut * ps[jj+1]
				ba += ut * ps[jj+2]
				rb += ut * qs[jj]
				gb += ut * qs[jj+1]
				bb += ut * qs[jj+2]
			}
			o := x * 3
			oA[o] = uint8(ra >> coeffPrecision)
			oA[o+1] = uint8(ga >> coeffPrecision)
			oA[o+2] = uint8(ba >> coeffPrecision)
			oB[o] = uint8(ra >> (32 + coeffPrecision))
			oB[o+1] = uint8(ga >> (32 + coeffPrecision))
			oB[o+2] = uint8(ba >> (32 + coeffPrecision))
			oC[o] = uint8(rb >> coeffPrecision)
			oC[o+1] = uint8(gb >> coeffPrecision)
			oC[o+2] = uint8(bb >> coeffPrecision)
			oD[o] = uint8(rb >> (32 + coeffPrecision))
			oD[o+1] = uint8(gb >> (32 + coeffPrecision))
			oD[o+2] = uint8(bb >> (32 + coeffPrecision))
		}
	}
	for ; y+1 < src.H; y += 2 {
		row0 := src.Pix[y*sw*3 : (y+1)*sw*3]
		row1 := src.Pix[(y+1)*sw*3 : (y+2)*sw*3]
		// The packed buffer keeps the source's interleaved channel layout,
		// so the repack is one flat unit-stride pass and the tap loop below
		// walks a single sequential stream.
		row1 = row1[:len(row0)]
		ppr := pp[:len(row0)]
		for i, v := range row0 {
			ppr[i] = uint64(v) | uint64(row1[i])<<32
		}
		orow0 := dst.Pix[y*w*3 : (y+1)*w*3]
		orow1 := dst.Pix[(y+1)*w*3 : (y+2)*w*3]
		for x := 0; x < w; x++ {
			m := int(rc.Counts[x]) * 3
			base3 := x * rc.KSize * 3
			j := int(rc.Bounds[x]) * 3
			// ps and tx share the length m, so every index below is
			// provably in bounds and the checks vanish.
			ps := pp[j : j+m]
			tx := rc.TapsP[base3 : base3+m]
			r2, g2, b2 := packedHalf, packedHalf, packedHalf
			jj := 0
			for ; jj+5 < m; jj += 6 {
				ut0, ut1 := tx[jj], tx[jj+3]
				r2 += ut0*ps[jj] + ut1*ps[jj+3]
				g2 += ut0*ps[jj+1] + ut1*ps[jj+4]
				b2 += ut0*ps[jj+2] + ut1*ps[jj+5]
			}
			if jj < m {
				ut := tx[jj]
				r2 += ut * ps[jj]
				g2 += ut * ps[jj+1]
				b2 += ut * ps[jj+2]
			}
			o := x * 3
			orow0[o] = uint8(r2 >> coeffPrecision)
			orow0[o+1] = uint8(g2 >> coeffPrecision)
			orow0[o+2] = uint8(b2 >> coeffPrecision)
			orow1[o] = uint8(r2 >> (32 + coeffPrecision))
			orow1[o+1] = uint8(g2 >> (32 + coeffPrecision))
			orow1[o+2] = uint8(b2 >> (32 + coeffPrecision))
		}
	}
	if y < src.H {
		// Odd trailing row: plain scalar accumulation, still clamp-free.
		row := src.Pix[y*sw*3 : (y+1)*sw*3]
		orow := dst.Pix[y*w*3 : (y+1)*w*3]
		for x := 0; x < w; x++ {
			base := x * rc.KSize
			taps := rc.Taps[base : base+int(rc.Counts[x])]
			si := int(rc.Bounds[x]) * 3
			r, g, b := int32(coeffHalf), int32(coeffHalf), int32(coeffHalf)
			for _, t := range taps {
				r += t * int32(row[si])
				g += t * int32(row[si+1])
				b += t * int32(row[si+2])
				si += 3
			}
			o := x * 3
			orow[o] = uint8(uint32(r) >> coeffPrecision)
			orow[o+1] = uint8(uint32(g) >> coeffPrecision)
			orow[o+2] = uint8(uint32(b) >> coeffPrecision)
		}
	}
	putU64(buf)
}

func resampleVerticalInto(dst, src *Image, rc *ResampleCoeffs) {
	if rc.packable() {
		resampleVerticalPacked(dst, src, rc)
		return
	}
	w3 := src.W * 3
	acc := getI32(w3)
	for y := 0; y < dst.H; y++ {
		for i := range acc {
			acc[i] = coeffHalf
		}
		base := y * rc.KSize
		n := int(rc.Counts[y])
		lo := int(rc.Bounds[y])
		for k := 0; k < n; k++ {
			t := rc.Taps[base+k]
			if t == 0 {
				continue
			}
			row := src.Pix[(lo+k)*w3 : (lo+k+1)*w3]
			for i, v := range row {
				acc[i] += t * int32(v)
			}
		}
		orow := dst.Pix[y*w3 : (y+1)*w3]
		for i, v := range acc {
			orow[i] = clip8(v)
		}
	}
	putI32(acc)
}

// vertRegTaps bounds the tap-window width the register-accumulating
// vertical fast path handles (a stack array of row slices); wider windows
// (downscales past ~15x) fall back to the accumulator-array variant.
const vertRegTaps = 32

// resampleVerticalPacked is the non-negative-taps fast path for the vertical
// pass: adjacent bytes ride two per uint64 (vertical taps are shared across
// columns), and four columns are accumulated in registers while walking the
// tap rows in lockstep, so there is no accumulator array to read-modify-
// write and the store is clamp-free for the same tap-sum reason as the
// horizontal path.
func resampleVerticalPacked(dst, src *Image, rc *ResampleCoeffs) {
	if rc.KSize > vertRegTaps {
		resampleVerticalAccum(dst, src, rc)
		return
	}
	w3 := src.W * 3
	var rows [vertRegTaps][]uint8
	var uts [vertRegTaps]uint64
	for y := 0; y < dst.H; y++ {
		base := y * rc.KSize
		n := int(rc.Counts[y])
		lo := int(rc.Bounds[y])
		for k := 0; k < n; k++ {
			rows[k] = src.Pix[(lo+k)*w3 : (lo+k+1)*w3]
			uts[k] = uint64(uint32(rc.Taps[base+k]))
		}
		orow := dst.Pix[y*w3 : (y+1)*w3]
		j := 0
		for ; j+3 < w3; j += 4 {
			a0, a1 := packedHalf, packedHalf
			for k := 0; k < n; k++ {
				r := rows[k]
				ut := uts[k]
				a0 += ut * (uint64(r[j]) | uint64(r[j+1])<<32)
				a1 += ut * (uint64(r[j+2]) | uint64(r[j+3])<<32)
			}
			orow[j] = uint8(a0 >> coeffPrecision)
			orow[j+1] = uint8(a0 >> (32 + coeffPrecision))
			orow[j+2] = uint8(a1 >> coeffPrecision)
			orow[j+3] = uint8(a1 >> (32 + coeffPrecision))
		}
		for ; j < w3; j++ {
			a := uint64(coeffHalf)
			for k := 0; k < n; k++ {
				a += uts[k] * uint64(rows[k][j])
			}
			orow[j] = uint8(a >> coeffPrecision)
		}
	}
}

// resampleVerticalAccum is the accumulator-array variant of the packed
// vertical pass, used when the tap window exceeds vertRegTaps.
func resampleVerticalAccum(dst, src *Image, rc *ResampleCoeffs) {
	w3 := src.W * 3
	half := w3 / 2
	odd := w3&1 == 1
	acc := getU64(half)
	for y := 0; y < dst.H; y++ {
		for i := range acc {
			acc[i] = packedHalf
		}
		accOdd := int32(coeffHalf)
		base := y * rc.KSize
		n := int(rc.Counts[y])
		lo := int(rc.Bounds[y])
		for k := 0; k < n; k++ {
			t := rc.Taps[base+k]
			if t == 0 {
				continue
			}
			ut := uint64(uint32(t))
			row := src.Pix[(lo+k)*w3 : (lo+k+1)*w3]
			if odd {
				accOdd += t * int32(row[w3-1])
			}
			j := 0
			for i := range acc {
				acc[i] += ut * (uint64(row[j]) | uint64(row[j+1])<<32)
				j += 2
			}
		}
		orow := dst.Pix[y*w3 : (y+1)*w3]
		for i, v := range acc {
			j := i * 2
			orow[j] = uint8(v >> coeffPrecision)
			orow[j+1] = uint8(v >> (32 + coeffPrecision))
		}
		if odd {
			orow[w3-1] = uint8(uint32(accOdd) >> coeffPrecision)
		}
	}
	putU64(acc)
}

// ---------------------------------------------------------------------------
// Crop / flip / brightness
// ---------------------------------------------------------------------------

// Crop extracts the rectangle [x0, x0+w) x [y0, y0+h). The rectangle must
// lie inside the image. The result is pooled; Release it when done.
func Crop(im *Image, x0, y0, w, h int) *Image {
	if x0 < 0 || y0 < 0 || x0+w > im.W || y0+h > im.H || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: crop (%d,%d,%d,%d) outside %dx%d", x0, y0, w, h, im.W, im.H))
	}
	out := GetImage(w, h)
	CropInto(out, im, x0, y0)
	return out
}

// CropInto fills dst with the dst.W x dst.H rectangle of im anchored at
// (x0, y0). dst must not alias im.
func CropInto(dst, im *Image, x0, y0 int) {
	w, h := dst.W, dst.H
	if x0 < 0 || y0 < 0 || x0+w > im.W || y0+h > im.H {
		panic(fmt.Sprintf("imaging: crop (%d,%d,%d,%d) outside %dx%d", x0, y0, w, h, im.W, im.H))
	}
	for y := 0; y < h; y++ {
		src := im.Pix[((y0+y)*im.W+x0)*3 : ((y0+y)*im.W+x0+w)*3]
		copy(dst.Pix[y*w*3:(y+1)*w*3], src)
	}
}

// FlipHorizontal mirrors the image left-right into a new pooled image,
// swapping whole 3-byte pixels row-wise over the raw Pix slices
// (ImagingFlipLeftRight works the same way — no per-pixel At/Set calls).
func FlipHorizontal(im *Image) *Image {
	out := GetImage(im.W, im.H)
	w3 := im.W * 3
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*w3 : (y+1)*w3]
		orow := out.Pix[y*w3 : (y+1)*w3]
		for x, j := 0, w3-3; x < w3; x, j = x+3, j-3 {
			orow[j] = row[x]
			orow[j+1] = row[x+1]
			orow[j+2] = row[x+2]
		}
	}
	return out
}

// FlipHorizontalInPlace mirrors the image left-right in place and returns
// the receiver — the zero-allocation variant the pipeline uses when it owns
// the sample's image.
func FlipHorizontalInPlace(im *Image) *Image {
	w3 := im.W * 3
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*w3 : (y+1)*w3]
		for i, j := 0, w3-3; i < j; i, j = i+3, j-3 {
			row[i], row[j] = row[j], row[i]
			row[i+1], row[j+1] = row[j+1], row[i+1]
			row[i+2], row[j+2] = row[j+2], row[i+2]
		}
	}
	return im
}

// brightnessScale converts a brightness factor to 16.16 fixed point.
func brightnessScale(factor float64) int32 {
	s := math.Round(factor * 65536)
	if s < 0 {
		s = 0
	}
	if s > math.MaxInt32 {
		s = math.MaxInt32
	}
	return int32(s)
}

// AdjustBrightness scales all channels by factor, clamping to [0, 255]
// (the RandomBrightnessAugmentation kernel for 2-D inputs). The result is
// pooled.
func AdjustBrightness(im *Image, factor float64) *Image {
	out := GetImage(im.W, im.H)
	scale := brightnessScale(factor)
	for i, v := range im.Pix {
		out.Pix[i] = scaleClamp8(v, scale)
	}
	return out
}

// AdjustBrightnessInPlace scales all channels by factor in place and
// returns the receiver.
func AdjustBrightnessInPlace(im *Image, factor float64) *Image {
	scale := brightnessScale(factor)
	for i, v := range im.Pix {
		im.Pix[i] = scaleClamp8(v, scale)
	}
	return im
}

func scaleClamp8(v uint8, scale int32) uint8 {
	s := (int64(v)*int64(scale) + 32768) >> 16
	if s > 255 {
		return 255
	}
	return uint8(s)
}

// RandomResizedCropParams picks the crop geometry exactly as torchvision
// does: sample area in [0.08, 1.0] of the source and aspect ratio in
// [3/4, 4/3] up to 10 times; fall back to a center crop.
func RandomResizedCropParams(w, h int, r *rng.Stream) (x0, y0, cw, ch int) {
	area := float64(w * h)
	for attempt := 0; attempt < 10; attempt++ {
		target := area * r.Uniform(0.08, 1.0)
		logRatio := r.Uniform(math.Log(3.0/4.0), math.Log(4.0/3.0))
		ratio := math.Exp(logRatio)
		cw = int(math.Round(math.Sqrt(target * ratio)))
		ch = int(math.Round(math.Sqrt(target / ratio)))
		if cw > 0 && ch > 0 && cw <= w && ch <= h {
			x0 = r.Intn(w - cw + 1)
			y0 = r.Intn(h - ch + 1)
			return x0, y0, cw, ch
		}
	}
	// Fallback: central crop of the largest inscribed square-ish region.
	cw, ch = w, h
	if cw > ch {
		cw = ch
	} else {
		ch = cw
	}
	return (w - cw) / 2, (h - ch) / 2, cw, ch
}

// ---------------------------------------------------------------------------
// 3-D volumes (the IS pipeline's kits19-like data)
// ---------------------------------------------------------------------------

// Volume is a single-channel float32 3-D volume, [D, H, W] row-major.
type Volume struct {
	D, H, W int
	Vox     []float32
}

// NewVolume allocates a zero volume.
func NewVolume(d, h, w int) *Volume {
	if d <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("imaging: invalid volume %dx%dx%d", d, h, w))
	}
	return &Volume{D: d, H: h, W: w, Vox: make([]float32, d*h*w)}
}

// SynthesizeVolume fills a volume with a deterministic blob pattern: a dim
// background with a bright "foreground" ellipsoid, mimicking a CT scan with
// a segmentation target, which RandBalancedCrop needs. The result is
// pooled.
func SynthesizeVolume(d, h, w int, seed int64) *Volume {
	v := GetVolume(d, h, w)
	s := rng.NewFromSeed(seed)
	cx := s.Uniform(0.3, 0.7) * float64(w)
	cy := s.Uniform(0.3, 0.7) * float64(h)
	cz := s.Uniform(0.3, 0.7) * float64(d)
	rad := s.Uniform(0.1, 0.25) * float64(minInt(d, minInt(h, w)))
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
				dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
				val := float32(20 + 5*math.Sin(float64(x+y+z)/7))
				if dist < rad {
					val = float32(200 - dist)
				}
				v.Vox[(z*h+y)*w+x] = val
			}
		}
	}
	return v
}

// Bytes returns the buffer size in bytes.
func (v *Volume) Bytes() int { return len(v.Vox) * 4 }

// CropVolume extracts a sub-volume. The result is pooled; Release it when
// done.
func CropVolume(v *Volume, z0, y0, x0, d, h, w int) *Volume {
	if z0 < 0 || y0 < 0 || x0 < 0 || z0+d > v.D || y0+h > v.H || x0+w > v.W {
		panic(fmt.Sprintf("imaging: volume crop out of range (%d,%d,%d %dx%dx%d) of %dx%dx%d",
			z0, y0, x0, d, h, w, v.D, v.H, v.W))
	}
	out := GetVolume(d, h, w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			src := v.Vox[((z0+z)*v.H+(y0+y))*v.W+x0:]
			copy(out.Vox[(z*h+y)*w:(z*h+y)*w+w], src[:w])
		}
	}
	return out
}

// ForegroundCenter finds the centroid of voxels above the threshold, used by
// RandBalancedCrop's foreground-aware sampling. ok is false when no voxel
// exceeds the threshold.
func (v *Volume) ForegroundCenter(threshold float32) (z, y, x int, ok bool) {
	var sz, sy, sx, n int
	for zz := 0; zz < v.D; zz++ {
		for yy := 0; yy < v.H; yy++ {
			base := (zz*v.H + yy) * v.W
			for xx := 0; xx < v.W; xx++ {
				if v.Vox[base+xx] > threshold {
					sz += zz
					sy += yy
					sx += xx
					n++
				}
			}
		}
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	return sz / n, sy / n, sx / n, true
}

// FlipVolumeAxis reverses the volume along axis (0=D, 1=H, 2=W), in place,
// and returns the receiver.
func FlipVolumeAxis(v *Volume, axis int) *Volume {
	switch axis {
	case 0:
		for z := 0; z < v.D/2; z++ {
			a := v.Vox[z*v.H*v.W : (z+1)*v.H*v.W]
			b := v.Vox[(v.D-1-z)*v.H*v.W : (v.D-z)*v.H*v.W]
			for i := range a {
				a[i], b[i] = b[i], a[i]
			}
		}
	case 1:
		for z := 0; z < v.D; z++ {
			for y := 0; y < v.H/2; y++ {
				a := v.Vox[(z*v.H+y)*v.W : (z*v.H+y+1)*v.W]
				b := v.Vox[(z*v.H+v.H-1-y)*v.W : (z*v.H+v.H-y)*v.W]
				for i := range a {
					a[i], b[i] = b[i], a[i]
				}
			}
		}
	case 2:
		for z := 0; z < v.D; z++ {
			for y := 0; y < v.H; y++ {
				row := v.Vox[(z*v.H+y)*v.W : (z*v.H+y+1)*v.W]
				for i, j := 0, v.W-1; i < j; i, j = i+1, j-1 {
					row[i], row[j] = row[j], row[i]
				}
			}
		}
	default:
		panic(fmt.Sprintf("imaging: flip axis %d out of range", axis))
	}
	return v
}

// ScaleVolume multiplies every voxel by factor in place (brightness
// augmentation for volumes) and returns the receiver.
func ScaleVolume(v *Volume, factor float32) *Volume {
	for i := range v.Vox {
		v.Vox[i] *= factor
	}
	return v
}

// AddGaussianNoise adds N(0, stddev) noise voxel-wise in place and returns
// the receiver.
func AddGaussianNoise(v *Volume, stddev float64, r *rng.Stream) *Volume {
	for i := range v.Vox {
		v.Vox[i] += float32(r.Normal(0, stddev))
	}
	return v
}

// PSNR computes peak signal-to-noise ratio between two same-sized images, in
// dB, used by the codec round-trip tests.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imaging: PSNR size mismatch")
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
