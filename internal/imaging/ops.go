package imaging

import (
	"fmt"
	"math"

	"lotus/internal/rng"
)

// ResampleCoeffs holds the precomputed filter taps for one output axis —
// the analogue of Pillow's precompute_coeffs, which Table I lists under
// RandomResizedCrop on AMD.
type ResampleCoeffs struct {
	// Bounds[i] is the first source index contributing to output i.
	Bounds []int
	// Weights[i] are the taps applied starting at Bounds[i].
	Weights [][]float64
}

// Filter selects the resampling kernel (Pillow's BILINEAR / BICUBIC).
type Filter int

const (
	// Bilinear is the triangle filter torchvision's RandomResizedCrop uses
	// by default.
	Bilinear Filter = iota
	// Bicubic is the Catmull-Rom-style cubic (a = -0.5), Pillow's BICUBIC.
	Bicubic
)

// support returns the filter radius in source samples.
func (f Filter) support() float64 {
	if f == Bicubic {
		return 2
	}
	return 1
}

// weight evaluates the filter kernel at distance d (in filter units).
func (f Filter) weight(d float64) float64 {
	d = math.Abs(d)
	if f == Bicubic {
		const a = -0.5
		switch {
		case d < 1:
			return (a+2)*d*d*d - (a+3)*d*d + 1
		case d < 2:
			return a*d*d*d - 5*a*d*d + 8*a*d - 4*a
		default:
			return 0
		}
	}
	if d < 1 {
		return 1 - d
	}
	return 0
}

// PrecomputeCoeffs builds bilinear (triangle filter) coefficients for
// resampling srcLen samples to dstLen.
func PrecomputeCoeffs(srcLen, dstLen int) *ResampleCoeffs {
	return PrecomputeCoeffsFilter(srcLen, dstLen, Bilinear)
}

// PrecomputeCoeffsFilter builds coefficients for the given filter.
func PrecomputeCoeffsFilter(srcLen, dstLen int, f Filter) *ResampleCoeffs {
	if srcLen <= 0 || dstLen <= 0 {
		panic(fmt.Sprintf("imaging: invalid resample %d -> %d", srcLen, dstLen))
	}
	scale := float64(srcLen) / float64(dstLen)
	filterScale := scale
	if filterScale < 1 {
		filterScale = 1
	}
	radius := f.support() * filterScale
	rc := &ResampleCoeffs{
		Bounds:  make([]int, dstLen),
		Weights: make([][]float64, dstLen),
	}
	for i := 0; i < dstLen; i++ {
		center := (float64(i) + 0.5) * scale
		lo := int(math.Floor(center - radius))
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Ceil(center + radius))
		if hi > srcLen {
			hi = srcLen
		}
		ws := make([]float64, hi-lo)
		var sum float64
		for j := lo; j < hi; j++ {
			d := (float64(j) + 0.5 - center) / filterScale
			w := f.weight(d)
			ws[j-lo] = w
			sum += w
		}
		if sum != 0 {
			for k := range ws {
				ws[k] /= sum
			}
		} else {
			ws[0] = 1
		}
		rc.Bounds[i] = lo
		rc.Weights[i] = ws
	}
	return rc
}

// Resize resamples the image to (w, h) with the separable bilinear filter,
// horizontal pass first then vertical — Pillow's
// ImagingResampleHorizontal_8bpc / ImagingResampleVertical_8bpc pair.
func Resize(im *Image, w, h int) *Image {
	return ResizeWith(im, w, h, Bilinear)
}

// ResizeWith resamples with an explicit filter (bicubic for OD-style
// quality-sensitive resizing).
func ResizeWith(im *Image, w, h int, f Filter) *Image {
	if w == im.W && h == im.H {
		return im.Clone()
	}
	hc := PrecomputeCoeffsFilter(im.W, w, f)
	mid := resampleHorizontal(im, hc, w)
	vc := PrecomputeCoeffsFilter(im.H, h, f)
	return resampleVertical(mid, vc, h)
}

func resampleHorizontal(im *Image, rc *ResampleCoeffs, w int) *Image {
	out := NewImage(w, im.H)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W*3 : (y+1)*im.W*3]
		orow := out.Pix[y*w*3 : (y+1)*w*3]
		for x := 0; x < w; x++ {
			lo := rc.Bounds[x]
			ws := rc.Weights[x]
			var r, g, b float64
			for k, wgt := range ws {
				i := (lo + k) * 3
				r += wgt * float64(row[i])
				g += wgt * float64(row[i+1])
				b += wgt * float64(row[i+2])
			}
			orow[x*3] = clampF(r)
			orow[x*3+1] = clampF(g)
			orow[x*3+2] = clampF(b)
		}
	}
	return out
}

func resampleVertical(im *Image, rc *ResampleCoeffs, h int) *Image {
	out := NewImage(im.W, h)
	for y := 0; y < h; y++ {
		lo := rc.Bounds[y]
		ws := rc.Weights[y]
		for x := 0; x < im.W; x++ {
			var r, g, b float64
			for k, wgt := range ws {
				i := ((lo+k)*im.W + x) * 3
				r += wgt * float64(im.Pix[i])
				g += wgt * float64(im.Pix[i+1])
				b += wgt * float64(im.Pix[i+2])
			}
			j := (y*im.W + x) * 3
			out.Pix[j] = clampF(r)
			out.Pix[j+1] = clampF(g)
			out.Pix[j+2] = clampF(b)
		}
	}
	return out
}

// Crop extracts the rectangle [x0, x0+w) x [y0, y0+h). The rectangle must
// lie inside the image.
func Crop(im *Image, x0, y0, w, h int) *Image {
	if x0 < 0 || y0 < 0 || x0+w > im.W || y0+h > im.H || w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: crop (%d,%d,%d,%d) outside %dx%d", x0, y0, w, h, im.W, im.H))
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		src := im.Pix[((y0+y)*im.W+x0)*3 : ((y0+y)*im.W+x0+w)*3]
		copy(out.Pix[y*w*3:(y+1)*w*3], src)
	}
	return out
}

// FlipHorizontal mirrors the image left-right.
func FlipHorizontal(im *Image) *Image {
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out.Set(im.W-1-x, y, r, g, b)
		}
	}
	return out
}

// AdjustBrightness scales all channels by factor, clamping to [0, 255]
// (the RandomBrightnessAugmentation kernel for 2-D inputs).
func AdjustBrightness(im *Image, factor float64) *Image {
	out := NewImage(im.W, im.H)
	for i, v := range im.Pix {
		out.Pix[i] = clampF(float64(v) * factor)
	}
	return out
}

// RandomResizedCropParams picks the crop geometry exactly as torchvision
// does: sample area in [0.08, 1.0] of the source and aspect ratio in
// [3/4, 4/3] up to 10 times; fall back to a center crop.
func RandomResizedCropParams(w, h int, r *rng.Stream) (x0, y0, cw, ch int) {
	area := float64(w * h)
	for attempt := 0; attempt < 10; attempt++ {
		target := area * r.Uniform(0.08, 1.0)
		logRatio := r.Uniform(math.Log(3.0/4.0), math.Log(4.0/3.0))
		ratio := math.Exp(logRatio)
		cw = int(math.Round(math.Sqrt(target * ratio)))
		ch = int(math.Round(math.Sqrt(target / ratio)))
		if cw > 0 && ch > 0 && cw <= w && ch <= h {
			x0 = r.Intn(w - cw + 1)
			y0 = r.Intn(h - ch + 1)
			return x0, y0, cw, ch
		}
	}
	// Fallback: central crop of the largest inscribed square-ish region.
	cw, ch = w, h
	if cw > ch {
		cw = ch
	} else {
		ch = cw
	}
	return (w - cw) / 2, (h - ch) / 2, cw, ch
}

// ---------------------------------------------------------------------------
// 3-D volumes (the IS pipeline's kits19-like data)
// ---------------------------------------------------------------------------

// Volume is a single-channel float32 3-D volume, [D, H, W] row-major.
type Volume struct {
	D, H, W int
	Vox     []float32
}

// NewVolume allocates a zero volume.
func NewVolume(d, h, w int) *Volume {
	if d <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("imaging: invalid volume %dx%dx%d", d, h, w))
	}
	return &Volume{D: d, H: h, W: w, Vox: make([]float32, d*h*w)}
}

// SynthesizeVolume fills a volume with a deterministic blob pattern: a dim
// background with a bright "foreground" ellipsoid, mimicking a CT scan with
// a segmentation target, which RandBalancedCrop needs.
func SynthesizeVolume(d, h, w int, seed int64) *Volume {
	v := NewVolume(d, h, w)
	s := rng.NewFromSeed(seed)
	cx := s.Uniform(0.3, 0.7) * float64(w)
	cy := s.Uniform(0.3, 0.7) * float64(h)
	cz := s.Uniform(0.3, 0.7) * float64(d)
	rad := s.Uniform(0.1, 0.25) * float64(minInt(d, minInt(h, w)))
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
				dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
				val := float32(20 + 5*math.Sin(float64(x+y+z)/7))
				if dist < rad {
					val = float32(200 - dist)
				}
				v.Vox[(z*h+y)*w+x] = val
			}
		}
	}
	return v
}

// Bytes returns the buffer size in bytes.
func (v *Volume) Bytes() int { return len(v.Vox) * 4 }

// CropVolume extracts a sub-volume.
func CropVolume(v *Volume, z0, y0, x0, d, h, w int) *Volume {
	if z0 < 0 || y0 < 0 || x0 < 0 || z0+d > v.D || y0+h > v.H || x0+w > v.W {
		panic(fmt.Sprintf("imaging: volume crop out of range (%d,%d,%d %dx%dx%d) of %dx%dx%d",
			z0, y0, x0, d, h, w, v.D, v.H, v.W))
	}
	out := NewVolume(d, h, w)
	for z := 0; z < d; z++ {
		for y := 0; y < h; y++ {
			src := v.Vox[((z0+z)*v.H+(y0+y))*v.W+x0:]
			copy(out.Vox[(z*h+y)*w:(z*h+y)*w+w], src[:w])
		}
	}
	return out
}

// ForegroundCenter finds the centroid of voxels above the threshold, used by
// RandBalancedCrop's foreground-aware sampling. ok is false when no voxel
// exceeds the threshold.
func (v *Volume) ForegroundCenter(threshold float32) (z, y, x int, ok bool) {
	var sz, sy, sx, n int
	for zz := 0; zz < v.D; zz++ {
		for yy := 0; yy < v.H; yy++ {
			base := (zz*v.H + yy) * v.W
			for xx := 0; xx < v.W; xx++ {
				if v.Vox[base+xx] > threshold {
					sz += zz
					sy += yy
					sx += xx
					n++
				}
			}
		}
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	return sz / n, sy / n, sx / n, true
}

// FlipVolumeAxis reverses the volume along axis (0=D, 1=H, 2=W), in place,
// and returns the receiver.
func FlipVolumeAxis(v *Volume, axis int) *Volume {
	switch axis {
	case 0:
		for z := 0; z < v.D/2; z++ {
			a := v.Vox[z*v.H*v.W : (z+1)*v.H*v.W]
			b := v.Vox[(v.D-1-z)*v.H*v.W : (v.D-z)*v.H*v.W]
			for i := range a {
				a[i], b[i] = b[i], a[i]
			}
		}
	case 1:
		for z := 0; z < v.D; z++ {
			for y := 0; y < v.H/2; y++ {
				a := v.Vox[(z*v.H+y)*v.W : (z*v.H+y+1)*v.W]
				b := v.Vox[(z*v.H+v.H-1-y)*v.W : (z*v.H+v.H-y)*v.W]
				for i := range a {
					a[i], b[i] = b[i], a[i]
				}
			}
		}
	case 2:
		for z := 0; z < v.D; z++ {
			for y := 0; y < v.H; y++ {
				row := v.Vox[(z*v.H+y)*v.W : (z*v.H+y+1)*v.W]
				for i, j := 0, v.W-1; i < j; i, j = i+1, j-1 {
					row[i], row[j] = row[j], row[i]
				}
			}
		}
	default:
		panic(fmt.Sprintf("imaging: flip axis %d out of range", axis))
	}
	return v
}

// ScaleVolume multiplies every voxel by factor in place (brightness
// augmentation for volumes) and returns the receiver.
func ScaleVolume(v *Volume, factor float32) *Volume {
	for i := range v.Vox {
		v.Vox[i] *= factor
	}
	return v
}

// AddGaussianNoise adds N(0, stddev) noise voxel-wise in place and returns
// the receiver.
func AddGaussianNoise(v *Volume, stddev float64, r *rng.Stream) *Volume {
	for i := range v.Vox {
		v.Vox[i] += float32(r.Normal(0, stddev))
	}
	return v
}

// PSNR computes peak signal-to-noise ratio between two same-sized images, in
// dB, used by the codec round-trip tests.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imaging: PSNR size mismatch")
	}
	var mse float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
