package imaging

import (
	"testing"
	"testing/quick"
)

// TestPropertySJPGRoundTripAnySize: the codec must decode whatever it
// encodes, at the original dimensions, with sane fidelity, for arbitrary
// (bounded) sizes and content seeds.
func TestPropertySJPGRoundTripAnySize(t *testing.T) {
	if err := quick.Check(func(wRaw, hRaw uint8, seed int64) bool {
		w := int(wRaw%120) + 8
		h := int(hRaw%120) + 8
		im := SynthesizeImage(w, h, seed)
		dec, err := DecodeSJPG(EncodeSJPG(im, 85))
		if err != nil {
			return false
		}
		return dec.W == w && dec.H == h && PSNR(im, dec) > 20
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCropFlipCommute: flipping then cropping the mirrored rectangle
// equals cropping then flipping.
func TestPropertyCropFlipCommute(t *testing.T) {
	if err := quick.Check(func(seed int64, x0Raw, y0Raw, cwRaw, chRaw uint8) bool {
		const W, H = 48, 40
		im := SynthesizeImage(W, H, seed)
		cw := int(cwRaw%24) + 4
		ch := int(chRaw%20) + 4
		x0 := int(x0Raw) % (W - cw)
		y0 := int(y0Raw) % (H - ch)

		a := FlipHorizontal(Crop(im, x0, y0, cw, ch))
		b := Crop(FlipHorizontal(im), W-x0-cw, y0, cw, ch)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyResizeBounds: resampled output never exceeds the input's value
// range (bilinear is a convex combination).
func TestPropertyResizeBounds(t *testing.T) {
	if err := quick.Check(func(lo, span uint8, wRaw, hRaw uint8) bool {
		hi := lo
		if int(lo)+int(span)%64 <= 255 {
			hi = lo + span%64
		}
		im := NewImage(31, 27)
		for i := range im.Pix {
			if i%2 == 0 {
				im.Pix[i] = lo
			} else {
				im.Pix[i] = hi
			}
		}
		out := Resize(im, int(wRaw%40)+4, int(hRaw%40)+4)
		for _, v := range out.Pix {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVolumeFlipInvolution over all axes and random shapes.
func TestPropertyVolumeFlipInvolution(t *testing.T) {
	if err := quick.Check(func(dRaw, hRaw, wRaw uint8, axisRaw uint8, seed int64) bool {
		d := int(dRaw%8) + 2
		h := int(hRaw%8) + 2
		w := int(wRaw%8) + 2
		axis := int(axisRaw % 3)
		v := SynthesizeVolume(d, h, w, seed)
		orig := append([]float32(nil), v.Vox...)
		FlipVolumeAxis(FlipVolumeAxis(v, axis), axis)
		for i := range orig {
			if v.Vox[i] != orig[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodeDeterministic: same input bytes -> same output bytes.
func TestPropertyEncodeDeterministic(t *testing.T) {
	if err := quick.Check(func(seed int64, q uint8) bool {
		quality := int(q%80) + 20
		im := SynthesizeImage(40, 32, seed)
		a := EncodeSJPG(im, quality)
		b := EncodeSJPG(im, quality)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
