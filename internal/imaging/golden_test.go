package imaging

import (
	"fmt"
	"math"
	"testing"

	"lotus/internal/rng"
)

// Golden-equivalence tests: the int32 fixed-point kernels against float64
// reference implementations of the same algorithms. The references mirror
// the staged structure (separable passes, per-pass rounding and clamping)
// so the only divergence is coefficient quantization, which must stay
// within one intensity level per pass.

// refResize is the float64 reference resampler: same separable structure,
// same filter windows, per-pass round-and-clamp to bytes.
func refResize(im *Image, w, h int, f Filter) *Image {
	mid := refResampleH(im, w, f)
	return refResampleV(mid, h, f)
}

func refWeights(srcLen, dstLen int, f Filter) (bounds []int, weights [][]float64) {
	scale := float64(srcLen) / float64(dstLen)
	filterScale := scale
	if filterScale < 1 {
		filterScale = 1
	}
	radius := f.support() * filterScale
	bounds = make([]int, dstLen)
	weights = make([][]float64, dstLen)
	for i := 0; i < dstLen; i++ {
		center := (float64(i) + 0.5) * scale
		lo := int(math.Floor(center - radius))
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Ceil(center + radius))
		if hi > srcLen {
			hi = srcLen
		}
		ws := make([]float64, hi-lo)
		var sum float64
		for j := range ws {
			ws[j] = f.weight((float64(lo+j) + 0.5 - center) / filterScale)
			sum += ws[j]
		}
		if sum != 0 {
			for j := range ws {
				ws[j] /= sum
			}
		} else {
			ws[0] = 1
		}
		bounds[i] = lo
		weights[i] = ws
	}
	return bounds, weights
}

func refClamp(v float64) uint8 {
	r := math.Round(v)
	if r < 0 {
		return 0
	}
	if r > 255 {
		return 255
	}
	return uint8(r)
}

func refResampleH(im *Image, w int, f Filter) *Image {
	bounds, weights := refWeights(im.W, w, f)
	out := NewImage(w, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < w; x++ {
			var r, g, b float64
			for j, wt := range weights[x] {
				si := (y*im.W + bounds[x] + j) * 3
				r += wt * float64(im.Pix[si])
				g += wt * float64(im.Pix[si+1])
				b += wt * float64(im.Pix[si+2])
			}
			o := (y*w + x) * 3
			out.Pix[o] = refClamp(r)
			out.Pix[o+1] = refClamp(g)
			out.Pix[o+2] = refClamp(b)
		}
	}
	return out
}

func refResampleV(im *Image, h int, f Filter) *Image {
	bounds, weights := refWeights(im.H, h, f)
	out := NewImage(im.W, h)
	for y := 0; y < h; y++ {
		for x := 0; x < im.W; x++ {
			var r, g, b float64
			for j, wt := range weights[y] {
				si := ((bounds[y]+j)*im.W + x) * 3
				r += wt * float64(im.Pix[si])
				g += wt * float64(im.Pix[si+1])
				b += wt * float64(im.Pix[si+2])
			}
			o := (y*im.W + x) * 3
			out.Pix[o] = refClamp(r)
			out.Pix[o+1] = refClamp(g)
			out.Pix[o+2] = refClamp(b)
		}
	}
	return out
}

// maxAbsDiff returns the largest per-channel intensity difference.
func maxAbsDiff(a, b *Image) int {
	if a.W != b.W || a.H != b.H {
		panic("size mismatch")
	}
	worst := 0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestResizeMatchesFloatReference(t *testing.T) {
	cases := []struct {
		srcW, srcH, w, h int
		f                Filter
		tol              int
	}{
		{512, 512, 224, 224, Bilinear, 1},
		{500, 375, 224, 224, Bilinear, 1},
		// Upscales interpolate at simple fractions, so exact .5 ties are
		// common and coefficient quantization can flip the rounding in each
		// of the two passes independently.
		{64, 64, 224, 224, Bilinear, 2},
		{224, 224, 224, 224, Bilinear, 0},
		{512, 512, 224, 224, Bicubic, 2},
		{300, 200, 640, 480, Bicubic, 2},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%d_to_%dx%d_f%d", c.srcW, c.srcH, c.w, c.h, c.f), func(t *testing.T) {
			im := SynthesizeImage(c.srcW, c.srcH, 7)
			defer im.Release()
			got := ResizeWith(im, c.w, c.h, c.f)
			defer got.Release()
			want := refResize(im, c.w, c.h, c.f)
			if d := maxAbsDiff(got, want); d > c.tol {
				t.Errorf("fixed-point resize deviates from float64 reference by %d levels (tolerance %d)", d, c.tol)
			}
		})
	}
}

// TestResizePropertyRandomGeometries drives the fixed-point resampler over
// randomized sizes and both filters, asserting it tracks the float64
// reference within 2 intensity levels (1 per separable pass).
func TestResizePropertyRandomGeometries(t *testing.T) {
	r := rng.NewFromSeed(42)
	for trial := 0; trial < 25; trial++ {
		srcW := 8 + r.Intn(200)
		srcH := 8 + r.Intn(200)
		w := 1 + r.Intn(256)
		h := 1 + r.Intn(256)
		f := Bilinear
		tol := 1
		if trial%2 == 1 {
			f = Bicubic
			tol = 2
		}
		im := SynthesizeImage(srcW, srcH, int64(trial))
		got := ResizeWith(im, w, h, f)
		want := refResize(im, w, h, f)
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("trial %d: %dx%d -> %dx%d filter %d: deviation %d > %d",
				trial, srcW, srcH, w, h, f, d, tol)
		}
		got.Release()
		im.Release()
	}
}

// refFDCT is a float64 DCT-II with fdct8x8's scaling convention (the plain
// JPEG c(u)c(v)/4 normalization; the integer pipeline's pass1Bits scaling
// cancels between its two passes).
func refFDCT(blk *[64]int32) [64]float64 {
	var out [64]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var sum float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += float64(blk[y*8+x]) *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			out[v*8+u] = sum * cu * cv / 4
		}
	}
	return out
}

// TestFDCTMatchesFloatReference checks the two-pass integer forward DCT
// against the direct float64 transform.
func TestFDCTMatchesFloatReference(t *testing.T) {
	r := rng.NewFromSeed(7)
	for trial := 0; trial < 20; trial++ {
		var blk, orig [64]int32
		for i := range blk {
			blk[i] = int32(r.Intn(256) - 128)
			orig[i] = blk[i]
		}
		fdct8x8(&blk)
		want := refFDCT(&orig)
		for i := range blk {
			if d := math.Abs(float64(blk[i]) - want[i]); d > 2 {
				t.Fatalf("trial %d coeff %d: fixed %d vs float %.2f (diff %.2f)",
					trial, i, blk[i], want[i], d)
			}
		}
	}
}

// refYCbCr is the float64 JFIF color transform.
func refYCbCr(r, g, b uint8) (y, cb, cr float64) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	y = 0.299*rf + 0.587*gf + 0.114*bf
	cb = 128 - 0.168736*rf - 0.331264*gf + 0.5*bf
	cr = 128 + 0.5*rf - 0.418688*gf - 0.081312*bf
	return
}

func TestColorConvertMatchesFloatReference(t *testing.T) {
	r := rng.NewFromSeed(11)
	for trial := 0; trial < 2000; trial++ {
		rr := uint8(r.Intn(256))
		gg := uint8(r.Intn(256))
		bb := uint8(r.Intn(256))
		y, cb, cr := rgbToYCbCr(rr, gg, bb)
		fy, fcb, fcr := refYCbCr(rr, gg, bb)
		if math.Abs(float64(y)-fy) > 1 || math.Abs(float64(cb)-fcb) > 1 || math.Abs(float64(cr)-fcr) > 1 {
			t.Fatalf("rgb(%d,%d,%d): fixed (%d,%d,%d) vs float (%.2f,%.2f,%.2f)",
				rr, gg, bb, y, cb, cr, fy, fcb, fcr)
		}
	}
}
