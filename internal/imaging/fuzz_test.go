package imaging

import "testing"

// FuzzDecodeSJPG: arbitrary payloads must never panic the decoder (decode
// errors are fine); valid payloads must round-trip dimensions.
func FuzzDecodeSJPG(f *testing.F) {
	f.Add(EncodeSJPG(SynthesizeImage(24, 16, 1), 80))
	f.Add(EncodeSJPGSubsampled(SynthesizeImage(17, 9, 2), 60, Sub420))
	f.Add([]byte("SJPG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodeSJPG(data)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H*3 {
			t.Fatalf("decoder accepted inconsistent image %dx%d len=%d", im.W, im.H, len(im.Pix))
		}
	})
}
