package imaging

import "sync"

// Buffer pooling for the real-mode hot path. A preprocessing worker churns
// through one Image (or Volume) per transform per sample; allocating each
// from the heap made allocation the dominant cost of the pipeline, exactly
// the overhead tf.data-style input pipelines eliminate with buffer reuse.
// Every pooled object has explicit ownership: whoever obtains a buffer from
// Get* (directly or via an operation that documents a pooled result) is
// responsible for calling Release exactly once, after which the buffer must
// not be touched. Release is optional — an unreleased buffer is simply
// garbage-collected — so external callers that ignore pooling stay correct.

var (
	imagePool  sync.Pool // *Image (Pix detached)
	volumePool sync.Pool // *Volume (Vox detached)
	pixPool    sync.Pool // *[]uint8
	voxPool    sync.Pool // *[]float32
	i32Pool    sync.Pool // *[]int32
	u64Pool    sync.Pool // *[]uint64
)

// roundUpPow2 rounds n up to the next power of two so buffers recycle
// across the slightly-varying geometries RandomResizedCrop produces.
func roundUpPow2(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

func getPix(n int) []uint8 {
	if p, _ := pixPool.Get().(*[]uint8); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint8, n, roundUpPow2(n))
}

func putPix(p []uint8) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	pixPool.Put(&p)
}

func getVox(n int) []float32 {
	if p, _ := voxPool.Get().(*[]float32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float32, n, roundUpPow2(n))
}

func putVox(p []float32) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	voxPool.Put(&p)
}

// getI32 returns an int32 scratch buffer with undefined contents (the codec
// plane and resample accumulator pool).
func getI32(n int) []int32 {
	if p, _ := i32Pool.Get().(*[]int32); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n, roundUpPow2(n))
}

func putI32(p []int32) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	i32Pool.Put(&p)
}

// getU64 returns a uint64 scratch buffer with undefined contents (the
// packed-lane resample accumulators).
func getU64(n int) []uint64 {
	if p, _ := u64Pool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]uint64, n, roundUpPow2(n))
}

func putU64(p []uint64) {
	if cap(p) == 0 {
		return
	}
	p = p[:0]
	u64Pool.Put(&p)
}

// GetImage returns a pooled w x h image. Unlike NewImage, the pixel contents
// are undefined; callers must overwrite every pixel. Release it when done.
func GetImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imaging: invalid pooled image dimensions")
	}
	im, _ := imagePool.Get().(*Image)
	if im == nil {
		im = &Image{}
	}
	im.W, im.H = w, h
	im.Pix = getPix(w * h * 3)
	return im
}

// Release returns the image's buffer to the pool. The image (and any slice
// of its Pix) must not be used afterwards. Releasing twice or releasing an
// image that never held pixels is a no-op, so defensive calls are safe.
func (im *Image) Release() {
	if im == nil || im.Pix == nil {
		return
	}
	putPix(im.Pix)
	im.Pix = nil
	im.W, im.H = 0, 0
	imagePool.Put(im)
}

// GetVolume returns a pooled d x h x w volume with undefined voxel contents.
// Release it when done.
func GetVolume(d, h, w int) *Volume {
	if d <= 0 || h <= 0 || w <= 0 {
		panic("imaging: invalid pooled volume dimensions")
	}
	v, _ := volumePool.Get().(*Volume)
	if v == nil {
		v = &Volume{}
	}
	v.D, v.H, v.W = d, h, w
	v.Vox = getVox(d * h * w)
	return v
}

// Release returns the volume's buffer to the pool. The volume must not be
// used afterwards. Double-release is a no-op.
func (v *Volume) Release() {
	if v == nil || v.Vox == nil {
		return
	}
	putVox(v.Vox)
	v.Vox = nil
	v.D, v.H, v.W = 0, 0, 0
	volumePool.Put(v)
}
