package imaging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements SJPG, a simplified JPEG-style codec. It keeps the
// real pipeline stages of baseline JPEG — RGB↔YCbCr color conversion, 8x8
// block DCT, quality-scaled quantization, zigzag scan, DC differential
// coding and AC zero-run-length coding with a varint entropy layer — while
// dropping Huffman table optimization and chroma subsampling. The stage
// structure mirrors libjpeg's, so the native-kernel layer can attribute
// decode work to the same function inventory the paper observes
// (decode_mcu, jpeg_idct_islow, ycc_rgb_convert, decompress_onepass, ...).
//
// All pixel arithmetic is int32 fixed point, like the libraries the paper
// profiles: color conversion uses 16-bit scaled coefficients (jccolor.c /
// jdcolor.c), the inverse DCT is the Loeffler/islow integer butterfly with
// CONST_BITS=13 and PASS1_BITS=2 (jidctint.c), and plane buffers are flat
// pooled []int32 — no per-plane heap allocation per decode.

const sjpgMagic = "SJPG"

// Subsampling selects the chroma layout.
type Subsampling int

const (
	// Sub444 stores chroma at full resolution.
	Sub444 Subsampling = iota
	// Sub420 stores chroma at half resolution in both axes (the common
	// photographic JPEG layout); decode upsamples it back (libjpeg's
	// sep_upsample stage).
	Sub420
)

// Standard JPEG Annex K luminance and chrominance quantization tables.
var lumaQuant = [64]int32{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var chromaQuant = [64]int32{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// zigzag maps scan position -> block index.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// scaledQuant builds the quality-scaled quantization table, following the
// libjpeg quality curve.
func scaledQuant(base *[64]int32, quality int) [64]int32 {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int32
	if quality < 50 {
		scale = int32(5000 / quality)
	} else {
		scale = int32(200 - 2*quality)
	}
	var out [64]int32
	for i, q := range base {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Color conversion (16-bit fixed point, jccolor.c / jdcolor.c)
// ---------------------------------------------------------------------------

const (
	fixBits = 16
	fixHalf = 1 << (fixBits - 1)
)

// rgbToYCbCr converts one pixel using the JPEG (full-range) matrix in
// 16.16 fixed point: y in [0, 255], cb and cr centred on 128. The scaled
// coefficient rows each sum to exactly 1<<16, so neutral grays convert
// without drift.
func rgbToYCbCr(r, g, b uint8) (y, cb, cr int32) {
	fr, fg, fb := int32(r), int32(g), int32(b)
	y = (19595*fr + 38470*fg + 7471*fb + fixHalf) >> fixBits
	cb = 128 + ((-11059*fr - 21709*fg + 32768*fb + fixHalf) >> fixBits)
	cr = 128 + ((32768*fr - 27439*fg - 5329*fb + fixHalf) >> fixBits)
	return
}

// yCbCrToRGB is the inverse conversion (libjpeg's ycc_rgb_convert).
func yCbCrToRGB(y, cb, cr int32) (uint8, uint8, uint8) {
	cb -= 128
	cr -= 128
	r := y + ((91881*cr + fixHalf) >> fixBits)
	g := y - ((22554*cb + 46802*cr + fixHalf) >> fixBits)
	b := y + ((116130*cb + fixHalf) >> fixBits)
	return clampU8(r), clampU8(g), clampU8(b)
}

func clampU8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// ---------------------------------------------------------------------------
// Forward DCT (int32 fixed point)
// ---------------------------------------------------------------------------

const (
	constBits = 13
	pass1Bits = 2
)

// fdctTab[u][n] = round(c(u) * cos((2n+1)uπ/16) << constBits): the DCT-II
// basis with the orthonormal scale factor folded in.
var fdctTab [8][8]int32

func init() {
	for u := 0; u < 8; u++ {
		c := 0.5
		if u == 0 {
			c = 0.5 / math.Sqrt2
		}
		for n := 0; n < 8; n++ {
			fdctTab[u][n] = int32(math.Round(c * math.Cos(float64(2*n+1)*float64(u)*math.Pi/16) * (1 << constBits)))
		}
	}
}

// fdct8x8 applies a separable 8-point DCT-II in place on a level-shifted
// block (values in roughly ±1024), producing natural-scale coefficients —
// the jpeg_fdct_islow counterpart. The first pass keeps pass1Bits extra
// fractional bits so the second pass's rounding does not accumulate.
func fdct8x8(blk *[64]int32) {
	var tmp [64]int32
	const r1 = 1 << (constBits - pass1Bits - 1)
	for r := 0; r < 8; r++ {
		in := blk[r*8 : r*8+8 : r*8+8]
		for u := 0; u < 8; u++ {
			t := &fdctTab[u]
			sum := in[0]*t[0] + in[1]*t[1] + in[2]*t[2] + in[3]*t[3] +
				in[4]*t[4] + in[5]*t[5] + in[6]*t[6] + in[7]*t[7]
			tmp[r*8+u] = (sum + r1) >> (constBits - pass1Bits)
		}
	}
	const r2 = 1 << (constBits + pass1Bits - 1)
	for c := 0; c < 8; c++ {
		for u := 0; u < 8; u++ {
			t := &fdctTab[u]
			sum := tmp[c]*t[0] + tmp[8+c]*t[1] + tmp[16+c]*t[2] + tmp[24+c]*t[3] +
				tmp[32+c]*t[4] + tmp[40+c]*t[5] + tmp[48+c]*t[6] + tmp[56+c]*t[7]
			blk[u*8+c] = (sum + r2) >> (constBits + pass1Bits)
		}
	}
}

// ---------------------------------------------------------------------------
// Inverse DCT: the Loeffler-Ligtenberg-Moshovitz butterfly used by
// jpeg_idct_islow, in int32 fixed point
// ---------------------------------------------------------------------------

const (
	fix0298631336 = 2446  // FIX(0.298631336)
	fix0390180644 = 3196  // FIX(0.390180644)
	fix0541196100 = 4433  // FIX(0.541196100)
	fix0765366865 = 6270  // FIX(0.765366865)
	fix0899976223 = 7373  // FIX(0.899976223)
	fix1175875602 = 9633  // FIX(1.175875602)
	fix1501321110 = 12299 // FIX(1.501321110)
	fix1847759065 = 15137 // FIX(1.847759065)
	fix1961570560 = 16069 // FIX(1.961570560)
	fix2053119869 = 16819 // FIX(2.053119869)
	fix2562915447 = 20995 // FIX(2.562915447)
	fix3072711026 = 25172 // FIX(3.072711026)
)

// dequantClamp bounds dequantized coefficients. Valid streams never exceed
// ~1200 (the DCT of a ±128 block tops out near 1024 plus half a quant
// step); the clamp only defends the int32 butterfly's headroom against
// hostile varint payloads.
const dequantClamp = 2048

// idct8x8 applies the inverse transform in place (jpeg_idct_islow): 12
// multiplies per 1-D butterfly instead of 64 for the naive dot-product
// form, with an all-zero-AC row shortcut — after quantization most rows
// are DC-only, which is exactly the case libjpeg special-cases.
func idct8x8(blk *[64]int32) {
	var ws [64]int32

	// Pass 1: rows, output scaled up by 1<<pass1Bits.
	for r := 0; r < 8; r++ {
		in := blk[r*8 : r*8+8 : r*8+8]
		if in[1]|in[2]|in[3]|in[4]|in[5]|in[6]|in[7] == 0 {
			dc := in[0] << pass1Bits
			o := ws[r*8 : r*8+8 : r*8+8]
			o[0], o[1], o[2], o[3] = dc, dc, dc, dc
			o[4], o[5], o[6], o[7] = dc, dc, dc, dc
			continue
		}

		// Even part.
		z2, z3 := in[2], in[6]
		z1 := (z2 + z3) * fix0541196100
		tmp2 := z1 - z3*fix1847759065
		tmp3 := z1 + z2*fix0765366865
		z2, z3 = in[0], in[4]
		tmp0 := (z2 + z3) << constBits
		tmp1 := (z2 - z3) << constBits
		t10, t13 := tmp0+tmp3, tmp0-tmp3
		t11, t12 := tmp1+tmp2, tmp1-tmp2

		// Odd part.
		tmp0, tmp1, tmp2, tmp3 = in[7], in[5], in[3], in[1]
		z1 = tmp0 + tmp3
		z2 = tmp1 + tmp2
		z3 = tmp0 + tmp2
		z4 := tmp1 + tmp3
		z5 := (z3 + z4) * fix1175875602
		tmp0 *= fix0298631336
		tmp1 *= fix2053119869
		tmp2 *= fix3072711026
		tmp3 *= fix1501321110
		z1 *= -fix0899976223
		z2 *= -fix2562915447
		z3 = z3*-fix1961570560 + z5
		z4 = z4*-fix0390180644 + z5
		tmp0 += z1 + z3
		tmp1 += z2 + z4
		tmp2 += z2 + z3
		tmp3 += z1 + z4

		const rnd = 1 << (constBits - pass1Bits - 1)
		o := ws[r*8 : r*8+8 : r*8+8]
		o[0] = (t10 + tmp3 + rnd) >> (constBits - pass1Bits)
		o[7] = (t10 - tmp3 + rnd) >> (constBits - pass1Bits)
		o[1] = (t11 + tmp2 + rnd) >> (constBits - pass1Bits)
		o[6] = (t11 - tmp2 + rnd) >> (constBits - pass1Bits)
		o[2] = (t12 + tmp1 + rnd) >> (constBits - pass1Bits)
		o[5] = (t12 - tmp1 + rnd) >> (constBits - pass1Bits)
		o[3] = (t13 + tmp0 + rnd) >> (constBits - pass1Bits)
		o[4] = (t13 - tmp0 + rnd) >> (constBits - pass1Bits)
	}

	// Pass 2: columns, final descale folds in the 1/8 IDCT normalization
	// (the +3 in the shift).
	for c := 0; c < 8; c++ {
		z2, z3 := ws[16+c], ws[48+c]
		z1 := (z2 + z3) * fix0541196100
		tmp2 := z1 - z3*fix1847759065
		tmp3 := z1 + z2*fix0765366865
		z2, z3 = ws[c], ws[32+c]
		tmp0 := (z2 + z3) << constBits
		tmp1 := (z2 - z3) << constBits
		t10, t13 := tmp0+tmp3, tmp0-tmp3
		t11, t12 := tmp1+tmp2, tmp1-tmp2

		tmp0, tmp1, tmp2, tmp3 = ws[56+c], ws[40+c], ws[24+c], ws[8+c]
		z1 = tmp0 + tmp3
		z2 = tmp1 + tmp2
		z3 = tmp0 + tmp2
		z4 := tmp1 + tmp3
		z5 := (z3 + z4) * fix1175875602
		tmp0 *= fix0298631336
		tmp1 *= fix2053119869
		tmp2 *= fix3072711026
		tmp3 *= fix1501321110
		z1 *= -fix0899976223
		z2 *= -fix2562915447
		z3 = z3*-fix1961570560 + z5
		z4 = z4*-fix0390180644 + z5
		tmp0 += z1 + z3
		tmp1 += z2 + z4
		tmp2 += z2 + z3
		tmp3 += z1 + z4

		const shift = constBits + pass1Bits + 3
		const rnd = 1 << (shift - 1)
		blk[c] = (t10 + tmp3 + rnd) >> shift
		blk[56+c] = (t10 - tmp3 + rnd) >> shift
		blk[8+c] = (t11 + tmp2 + rnd) >> shift
		blk[48+c] = (t11 - tmp2 + rnd) >> shift
		blk[16+c] = (t12 + tmp1 + rnd) >> shift
		blk[40+c] = (t12 - tmp1 + rnd) >> shift
		blk[24+c] = (t13 + tmp0 + rnd) >> shift
		blk[32+c] = (t13 - tmp0 + rnd) >> shift
	}
}

// ---------------------------------------------------------------------------
// Entropy layer
// ---------------------------------------------------------------------------

// byteWriter is the varint entropy layer.
type byteWriter struct{ buf []byte }

func (w *byteWriter) writeUvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *byteWriter) writeVarint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("sjpg: truncated uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readVarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("sjpg: truncated varint")
	}
	r.pos += n
	return v, nil
}

const eobRun = 0xFF // end-of-block marker in the run field

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

// EncodeSJPG compresses an image at the given quality (1–100) with 4:4:4
// chroma.
func EncodeSJPG(im *Image, quality int) []byte {
	return EncodeSJPGSubsampled(im, quality, Sub444)
}

// EncodeSJPGSubsampled compresses with an explicit chroma layout.
func EncodeSJPGSubsampled(im *Image, quality int, sub Subsampling) []byte {
	// Pre-size for the common photographic case (~1 byte/px at q=85) so
	// the entropy buffer grows at most once.
	w := &byteWriter{buf: make([]byte, 0, 64+im.W*im.H)}
	w.buf = append(w.buf, sjpgMagic...)
	w.writeUvarint(uint64(im.W))
	w.writeUvarint(uint64(im.H))
	w.writeUvarint(uint64(quality))
	w.writeUvarint(uint64(sub))

	planes := colorConvertForward(im)
	quants := [3][64]int32{
		scaledQuant(&lumaQuant, quality),
		scaledQuant(&chromaQuant, quality),
		scaledQuant(&chromaQuant, quality),
	}

	for ch := 0; ch < 3; ch++ {
		plane, pw, ph := planes[ch], im.W, im.H
		if sub == Sub420 && ch > 0 {
			ds, dw, dh := downsample2x(plane, im.W, im.H)
			encodePlane(w, ds, dw, dh, &quants[ch])
			putI32(ds)
			continue
		}
		encodePlane(w, plane, pw, ph, &quants[ch])
	}
	for _, p := range planes {
		putI32(p)
	}
	return w.buf
}

// roundDiv divides rounding half away from zero, matching math.Round of
// the floating-point quotient.
func roundDiv(v, q int32) int32 {
	if v >= 0 {
		return (v + q/2) / q
	}
	return -((-v + q/2) / q)
}

// encodePlane writes one plane's blocks (DC differential + AC runs).
func encodePlane(w *byteWriter, plane []int32, pw, ph int, quant *[64]int32) {
	bw, bh := (pw+7)/8, (ph+7)/8
	prevDC := int64(0)
	var blk [64]int32
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			loadBlock(&blk, plane, pw, ph, bx, by)
			fdct8x8(&blk)
			dc := int64(roundDiv(blk[0], quant[0]))
			w.writeVarint(dc - prevDC)
			prevDC = dc
			// AC run-length: (zero-run, value) pairs, EOB terminator.
			run := 0
			for i := 1; i < 64; i++ {
				q := roundDiv(blk[zigzag[i]], quant[zigzag[i]])
				if q == 0 {
					run++
					continue
				}
				w.writeUvarint(uint64(run))
				w.writeVarint(int64(q))
				run = 0
			}
			w.writeUvarint(eobRun)
		}
	}
}

// downsample2x halves a plane in both axes by box averaging (the encoder
// side of 4:2:0). The result is pooled; the caller releases it.
func downsample2x(plane []int32, w, h int) ([]int32, int, int) {
	ow, oh := (w+1)/2, (h+1)/2
	out := getI32(ow * oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var sum, n int32
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sy, sx := y*2+dy, x*2+dx
					if sy < h && sx < w {
						sum += plane[sy*w+sx]
						n++
					}
				}
			}
			out[y*ow+x] = roundDiv(sum, n)
		}
	}
	return out, ow, oh
}

// upsample2x doubles a plane in both axes by separable linear interpolation
// (libjpeg's sep_upsample "fancy upsampling") with 2-bit fractional
// positions: samples sit at quarter offsets, so the four bilinear weights
// are sixteenths. The result is pooled; the caller releases it.
func upsample2x(plane []int32, pw, ph, w, h int) []int32 {
	out := getI32(w * h)
	for y := 0; y < h; y++ {
		sy4 := 2*y - 1 // source y in quarter units: y/2 - 0.25
		y0 := sy4 >> 2
		fy := int32(sy4 - y0*4)
		y1 := y0 + 1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > ph-1 {
			y1 = ph - 1
		}
		if y0 > ph-1 {
			y0 = ph - 1
		}
		row0 := plane[y0*pw : (y0+1)*pw]
		row1 := plane[y1*pw : (y1+1)*pw]
		orow := out[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			sx4 := 2*x - 1
			x0 := sx4 >> 2
			fx := int32(sx4 - x0*4)
			x1 := x0 + 1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > pw-1 {
				x1 = pw - 1
			}
			if x0 > pw-1 {
				x0 = pw - 1
			}
			top := (4-fx)*row0[x0] + fx*row0[x1]
			bot := (4-fx)*row1[x0] + fx*row1[x1]
			orow[x] = ((4-fy)*top + fy*bot + 8) >> 4
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

// SJPGDims parses just the header, returning the encoded dimensions.
func SJPGDims(data []byte) (w, h int, err error) {
	if len(data) < 4 || string(data[:4]) != sjpgMagic {
		return 0, 0, errors.New("sjpg: bad magic")
	}
	r := &byteReader{buf: data, pos: 4}
	wu, err := r.readUvarint()
	if err != nil {
		return 0, 0, err
	}
	hu, err := r.readUvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(wu), int(hu), nil
}

// DecodeSJPG decompresses an SJPG payload. The decode path mirrors libjpeg's
// stages: entropy decode (decode_mcu), dequantize + inverse DCT
// (jpeg_idct_islow), color conversion (ycc_rgb_convert), assembled by the
// decompress_onepass driver. The returned image is pooled; callers may
// Release it when finished with the pixels.
func DecodeSJPG(data []byte) (*Image, error) {
	if len(data) < 4 || string(data[:4]) != sjpgMagic {
		return nil, errors.New("sjpg: bad magic")
	}
	r := &byteReader{buf: data, pos: 4}
	wu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	hu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	qu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	su, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	width, height, quality := int(wu), int(hu), int(qu)
	sub := Subsampling(su)
	if width <= 0 || height <= 0 || width > 1<<16 || height > 1<<16 {
		return nil, fmt.Errorf("sjpg: implausible dimensions %dx%d", width, height)
	}
	// Cap the total pixel count: a hostile header must not make the decoder
	// allocate tens of gigabytes before the payload is even validated.
	const maxPixels = 1 << 26 // 64 Mpix, ~8x a full-frame photo
	if width*height > maxPixels {
		return nil, fmt.Errorf("sjpg: image %dx%d exceeds the %d-pixel decode limit", width, height, maxPixels)
	}
	if sub != Sub444 && sub != Sub420 {
		return nil, fmt.Errorf("sjpg: unknown subsampling %d", int(sub))
	}

	quants := [3][64]int32{
		scaledQuant(&lumaQuant, quality),
		scaledQuant(&chromaQuant, quality),
		scaledQuant(&chromaQuant, quality),
	}
	var planes [3][]int32
	release := func() {
		for _, p := range planes {
			if p != nil {
				putI32(p)
			}
		}
	}
	for ch := 0; ch < 3; ch++ {
		pw, ph := width, height
		if sub == Sub420 && ch > 0 {
			pw, ph = (width+1)/2, (height+1)/2
		}
		plane := getI32(pw * ph)
		if err := decodePlane(r, plane, pw, ph, &quants[ch]); err != nil {
			putI32(plane)
			release()
			return nil, err
		}
		if sub == Sub420 && ch > 0 {
			full := upsample2x(plane, pw, ph, width, height)
			putI32(plane)
			plane = full
		}
		planes[ch] = plane
	}
	im := colorConvertInverse(&planes, width, height)
	release()
	return im, nil
}

// decodePlane reads one plane's blocks (the decompress_onepass inner loop:
// entropy decode, dequantize, inverse DCT).
func decodePlane(r *byteReader, plane []int32, pw, ph int, quant *[64]int32) error {
	bw, bh := (pw+7)/8, (ph+7)/8
	prevDC := int64(0)
	var blk [64]int32
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			nz, dc, err := decodeMCU(&blk, r, prevDC, quant)
			if err != nil {
				return err
			}
			prevDC = dc
			if nz <= 1 {
				// DC-only block: the IDCT of a lone DC coefficient is a
				// flat block at dc/8 (libjpeg's dcval shortcut).
				storeBlockConst((blk[0]+4)>>3, plane, pw, ph, bx, by)
				continue
			}
			idct8x8(&blk)
			storeBlock(&blk, plane, pw, ph, bx, by)
		}
	}
	return nil
}

// dequant scales an entropy-decoded coefficient by its quant step and
// clamps it to the butterfly's safe input range.
func dequant(v int64, q int32) int32 {
	v *= int64(q)
	if v > dequantClamp {
		return dequantClamp
	}
	if v < -dequantClamp {
		return -dequantClamp
	}
	return int32(v)
}

// decodeMCU entropy-decodes and dequantizes one 8x8 block into blk in
// natural order (the hottest decode function in the paper's Table I). It
// returns the number of nonzero coefficients so DC-only blocks can skip
// the IDCT entirely.
func decodeMCU(blk *[64]int32, r *byteReader, prevDC int64, quant *[64]int32) (nz int, dc int64, err error) {
	*blk = [64]int32{}
	delta, err := r.readVarint()
	if err != nil {
		return 0, 0, err
	}
	dc = prevDC + delta
	blk[0] = dequant(dc, quant[0])
	nz = 1
	i := 1
	for i < 64 {
		run, err := r.readUvarint()
		if err != nil {
			return 0, 0, err
		}
		if run == eobRun {
			return nz, dc, nil
		}
		// Bound the run before any arithmetic: a hostile varint can exceed
		// int range and wrap negative.
		if run > 63 {
			return 0, 0, errors.New("sjpg: AC run overflows block")
		}
		i += int(run)
		if i >= 64 {
			return 0, 0, errors.New("sjpg: AC run overflows block")
		}
		v, err := r.readVarint()
		if err != nil {
			return 0, 0, err
		}
		zz := zigzag[i]
		blk[zz] = dequant(v, quant[zz])
		nz++
		i++
	}
	// A full block must still be terminated by its EOB.
	run, err := r.readUvarint()
	if err != nil {
		return 0, 0, err
	}
	if run != eobRun {
		return 0, 0, errors.New("sjpg: missing EOB")
	}
	return nz, dc, nil
}

// colorConvertForward produces the three YCbCr planes, level-shifted to be
// centred on zero as the DCT expects. Planes are pooled; the caller
// releases them.
func colorConvertForward(im *Image) [3][]int32 {
	n := im.W * im.H
	var planes [3][]int32
	for i := range planes {
		planes[i] = getI32(n)
	}
	p := im.Pix
	py, pcb, pcr := planes[0], planes[1], planes[2]
	for i := 0; i < n; i++ {
		y, cb, cr := rgbToYCbCr(p[i*3], p[i*3+1], p[i*3+2])
		py[i] = y - 128
		pcb[i] = cb - 128
		pcr[i] = cr - 128
	}
	return planes
}

func colorConvertInverse(planes *[3][]int32, w, h int) *Image {
	im := GetImage(w, h)
	py, pcb, pcr := planes[0], planes[1], planes[2]
	pix := im.Pix
	for i := 0; i < w*h; i++ {
		r, g, b := yCbCrToRGB(py[i]+128, pcb[i]+128, pcr[i]+128)
		pix[i*3], pix[i*3+1], pix[i*3+2] = r, g, b
	}
	return im
}

// storeClamp bounds reconstructed samples: valid streams stay within
// ±~300 of zero, so the clamp only protects the color-convert multiplies
// from hostile-stream overflow.
func storeClamp(v int32) int32 {
	if v > 1023 {
		return 1023
	}
	if v < -1024 {
		return -1024
	}
	return v
}

// loadBlock copies an 8x8 tile from a plane, replicating edge samples for
// partial blocks (JPEG edge extension).
func loadBlock(blk *[64]int32, plane []int32, w, h, bx, by int) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			sy = h - 1
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				sx = w - 1
			}
			blk[y*8+x] = plane[sy*w+sx]
		}
	}
}

func storeBlock(blk *[64]int32, plane []int32, w, h, bx, by int) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			continue
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				continue
			}
			plane[sy*w+sx] = storeClamp(blk[y*8+x])
		}
	}
}

func storeBlockConst(v int32, plane []int32, w, h, bx, by int) {
	v = storeClamp(v)
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			continue
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				continue
			}
			plane[sy*w+sx] = v
		}
	}
}
