package imaging

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements SJPG, a simplified JPEG-style codec. It keeps the
// real pipeline stages of baseline JPEG — RGB↔YCbCr color conversion, 8x8
// block DCT, quality-scaled quantization, zigzag scan, DC differential
// coding and AC zero-run-length coding with a varint entropy layer — while
// dropping Huffman table optimization and chroma subsampling. The stage
// structure mirrors libjpeg's, so the native-kernel layer can attribute
// decode work to the same function inventory the paper observes
// (decode_mcu, jpeg_idct_islow, ycc_rgb_convert, decompress_onepass, ...).

const sjpgMagic = "SJPG"

// Subsampling selects the chroma layout.
type Subsampling int

const (
	// Sub444 stores chroma at full resolution.
	Sub444 Subsampling = iota
	// Sub420 stores chroma at half resolution in both axes (the common
	// photographic JPEG layout); decode upsamples it back (libjpeg's
	// sep_upsample stage).
	Sub420
)

// Standard JPEG Annex K luminance and chrominance quantization tables.
var lumaQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

var chromaQuant = [64]int{
	17, 18, 24, 47, 99, 99, 99, 99,
	18, 21, 26, 66, 99, 99, 99, 99,
	24, 26, 56, 99, 99, 99, 99, 99,
	47, 66, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
	99, 99, 99, 99, 99, 99, 99, 99,
}

// zigzag maps scan position -> block index.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// scaledQuant builds the quality-scaled quantization table, following the
// libjpeg quality curve.
func scaledQuant(base *[64]int, quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var out [64]int
	for i, q := range base {
		v := (q*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		out[i] = v
	}
	return out
}

// rgbToYCbCr converts one pixel using the JPEG (full-range) matrix.
func rgbToYCbCr(r, g, b uint8) (y, cb, cr float64) {
	fr, fg, fb := float64(r), float64(g), float64(b)
	y = 0.299*fr + 0.587*fg + 0.114*fb
	cb = 128 - 0.168736*fr - 0.331264*fg + 0.5*fb
	cr = 128 + 0.5*fr - 0.418688*fg - 0.081312*fb
	return
}

// yCbCrToRGB is the inverse conversion (libjpeg's ycc_rgb_convert).
func yCbCrToRGB(y, cb, cr float64) (uint8, uint8, uint8) {
	r := y + 1.402*(cr-128)
	g := y - 0.344136*(cb-128) - 0.714136*(cr-128)
	b := y + 1.772*(cb-128)
	return clampF(r), clampF(g), clampF(b)
}

func clampF(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// fdct8x8 applies a separable 8-point DCT-II in place (libjpeg's
// jpeg_fdct_islow counterpart).
func fdct8x8(blk *[64]float64) {
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		dct8(blk[r*8:(r+1)*8], tmp[r*8:(r+1)*8])
	}
	var col, out [8]float64
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = tmp[r*8+c]
		}
		dct8(col[:], out[:])
		for r := 0; r < 8; r++ {
			blk[r*8+c] = out[r]
		}
	}
}

// idct8x8 applies the inverse transform in place (jpeg_idct_islow).
func idct8x8(blk *[64]float64) {
	var tmp [64]float64
	for r := 0; r < 8; r++ {
		idct8(blk[r*8:(r+1)*8], tmp[r*8:(r+1)*8])
	}
	var col, out [8]float64
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = tmp[r*8+c]
		}
		idct8(col[:], out[:])
		for r := 0; r < 8; r++ {
			blk[r*8+c] = out[r]
		}
	}
}

var dctCos [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for n := 0; n < 8; n++ {
			dctCos[u][n] = math.Cos(float64(2*n+1) * float64(u) * math.Pi / 16)
		}
	}
}

func dct8(in, out []float64) {
	for u := 0; u < 8; u++ {
		var sum float64
		for n := 0; n < 8; n++ {
			sum += in[n] * dctCos[u][n]
		}
		c := 0.5
		if u == 0 {
			c = 0.5 / math.Sqrt2
		}
		out[u] = c * sum
	}
}

func idct8(in, out []float64) {
	for n := 0; n < 8; n++ {
		sum := in[0] / math.Sqrt2
		for u := 1; u < 8; u++ {
			sum += in[u] * dctCos[u][n]
		}
		out[n] = sum / 2
	}
}

// bitWriter is the varint entropy layer.
type byteWriter struct{ buf []byte }

func (w *byteWriter) writeUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}

func (w *byteWriter) writeVarint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}

type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("sjpg: truncated uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) readVarint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("sjpg: truncated varint")
	}
	r.pos += n
	return v, nil
}

const eobRun = 0xFF // end-of-block marker in the run field

// EncodeSJPG compresses an image at the given quality (1–100) with 4:4:4
// chroma.
func EncodeSJPG(im *Image, quality int) []byte {
	return EncodeSJPGSubsampled(im, quality, Sub444)
}

// EncodeSJPGSubsampled compresses with an explicit chroma layout.
func EncodeSJPGSubsampled(im *Image, quality int, sub Subsampling) []byte {
	w := &byteWriter{}
	w.buf = append(w.buf, sjpgMagic...)
	w.writeUvarint(uint64(im.W))
	w.writeUvarint(uint64(im.H))
	w.writeUvarint(uint64(quality))
	w.writeUvarint(uint64(sub))

	planes := colorConvertForward(im)
	quants := [3][64]int{
		scaledQuant(&lumaQuant, quality),
		scaledQuant(&chromaQuant, quality),
		scaledQuant(&chromaQuant, quality),
	}

	for ch := 0; ch < 3; ch++ {
		plane, pw, ph := planes[ch], im.W, im.H
		if sub == Sub420 && ch > 0 {
			plane, pw, ph = downsample2x(plane, im.W, im.H)
		}
		encodePlane(w, plane, pw, ph, &quants[ch])
	}
	return w.buf
}

// encodePlane writes one plane's blocks (DC differential + AC runs).
func encodePlane(w *byteWriter, plane []float64, pw, ph int, quant *[64]int) {
	bw, bh := (pw+7)/8, (ph+7)/8
	prevDC := int64(0)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var blk [64]float64
			loadBlock(&blk, plane, pw, ph, bx, by)
			fdct8x8(&blk)
			var q [64]int64
			for i := 0; i < 64; i++ {
				q[i] = int64(math.Round(blk[zigzag[i]] / float64(quant[zigzag[i]])))
			}
			// DC differential.
			w.writeVarint(q[0] - prevDC)
			prevDC = q[0]
			// AC run-length: (zero-run, value) pairs, EOB terminator.
			run := 0
			for i := 1; i < 64; i++ {
				if q[i] == 0 {
					run++
					continue
				}
				w.writeUvarint(uint64(run))
				w.writeVarint(q[i])
				run = 0
			}
			w.writeUvarint(eobRun)
		}
	}
}

// downsample2x halves a plane in both axes by box averaging (the encoder
// side of 4:2:0).
func downsample2x(plane []float64, w, h int) ([]float64, int, int) {
	ow, oh := (w+1)/2, (h+1)/2
	out := make([]float64, ow*oh)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			var sum float64
			var n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sy, sx := y*2+dy, x*2+dx
					if sy < h && sx < w {
						sum += plane[sy*w+sx]
						n++
					}
				}
			}
			out[y*ow+x] = sum / float64(n)
		}
	}
	return out, ow, oh
}

// upsample2x doubles a plane in both axes by separable linear interpolation
// (libjpeg's sep_upsample "fancy upsampling").
func upsample2x(plane []float64, pw, ph, w, h int) []float64 {
	out := make([]float64, w*h)
	for y := 0; y < h; y++ {
		sy := float64(y)/2 - 0.25
		y0 := int(math.Floor(sy))
		fy := sy - float64(y0)
		y1 := y0 + 1
		if y0 < 0 {
			y0 = 0
		}
		if y1 > ph-1 {
			y1 = ph - 1
		}
		if y0 > ph-1 {
			y0 = ph - 1
		}
		for x := 0; x < w; x++ {
			sx := float64(x)/2 - 0.25
			x0 := int(math.Floor(sx))
			fx := sx - float64(x0)
			x1 := x0 + 1
			if x0 < 0 {
				x0 = 0
			}
			if x1 > pw-1 {
				x1 = pw - 1
			}
			if x0 > pw-1 {
				x0 = pw - 1
			}
			v00 := plane[y0*pw+x0]
			v01 := plane[y0*pw+x1]
			v10 := plane[y1*pw+x0]
			v11 := plane[y1*pw+x1]
			out[y*w+x] = (1-fy)*((1-fx)*v00+fx*v01) + fy*((1-fx)*v10+fx*v11)
		}
	}
	return out
}

// SJPGDims parses just the header, returning the encoded dimensions.
func SJPGDims(data []byte) (w, h int, err error) {
	if len(data) < 4 || string(data[:4]) != sjpgMagic {
		return 0, 0, errors.New("sjpg: bad magic")
	}
	r := &byteReader{buf: data, pos: 4}
	wu, err := r.readUvarint()
	if err != nil {
		return 0, 0, err
	}
	hu, err := r.readUvarint()
	if err != nil {
		return 0, 0, err
	}
	return int(wu), int(hu), nil
}

// DecodeSJPG decompresses an SJPG payload. The decode path mirrors libjpeg's
// stages: entropy decode (decode_mcu), dequantize + inverse DCT
// (jpeg_idct_islow), color conversion (ycc_rgb_convert), assembled by the
// decompress_onepass driver.
func DecodeSJPG(data []byte) (*Image, error) {
	if len(data) < 4 || string(data[:4]) != sjpgMagic {
		return nil, errors.New("sjpg: bad magic")
	}
	r := &byteReader{buf: data, pos: 4}
	wu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	hu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	qu, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	su, err := r.readUvarint()
	if err != nil {
		return nil, err
	}
	width, height, quality := int(wu), int(hu), int(qu)
	sub := Subsampling(su)
	if width <= 0 || height <= 0 || width > 1<<16 || height > 1<<16 {
		return nil, fmt.Errorf("sjpg: implausible dimensions %dx%d", width, height)
	}
	// Cap the total pixel count: a hostile header must not make the decoder
	// allocate tens of gigabytes before the payload is even validated.
	const maxPixels = 1 << 26 // 64 Mpix, ~8x a full-frame photo
	if width*height > maxPixels {
		return nil, fmt.Errorf("sjpg: image %dx%d exceeds the %d-pixel decode limit", width, height, maxPixels)
	}
	if sub != Sub444 && sub != Sub420 {
		return nil, fmt.Errorf("sjpg: unknown subsampling %d", int(sub))
	}

	quants := [3][64]int{
		scaledQuant(&lumaQuant, quality),
		scaledQuant(&chromaQuant, quality),
		scaledQuant(&chromaQuant, quality),
	}
	var planes [3][]float64
	for ch := 0; ch < 3; ch++ {
		pw, ph := width, height
		if sub == Sub420 && ch > 0 {
			pw, ph = (width+1)/2, (height+1)/2
		}
		plane := make([]float64, pw*ph)
		if err := decodePlane(r, plane, pw, ph, &quants[ch]); err != nil {
			return nil, err
		}
		if sub == Sub420 && ch > 0 {
			plane = upsample2x(plane, pw, ph, width, height)
		}
		planes[ch] = plane
	}
	return colorConvertInverse(planes, width, height), nil
}

// decodePlane reads one plane's blocks (the decompress_onepass inner loop:
// entropy decode, dequantize, inverse DCT).
func decodePlane(r *byteReader, plane []float64, pw, ph int, quant *[64]int) error {
	bw, bh := (pw+7)/8, (ph+7)/8
	prevDC := int64(0)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			q, dc, err := decodeMCU(r, prevDC)
			if err != nil {
				return err
			}
			prevDC = dc
			var blk [64]float64
			for i := 0; i < 64; i++ {
				blk[zigzag[i]] = float64(q[i]) * float64(quant[zigzag[i]])
			}
			idct8x8(&blk)
			storeBlock(&blk, plane, pw, ph, bx, by)
		}
	}
	return nil
}

// decodeMCU entropy-decodes one 8x8 block (the hottest decode function in
// the paper's Table I).
func decodeMCU(r *byteReader, prevDC int64) (q [64]int64, dc int64, err error) {
	delta, err := r.readVarint()
	if err != nil {
		return q, 0, err
	}
	dc = prevDC + delta
	q[0] = dc
	i := 1
	for i < 64 {
		run, err := r.readUvarint()
		if err != nil {
			return q, 0, err
		}
		if run == eobRun {
			return q, dc, nil
		}
		// Bound the run before any arithmetic: a hostile varint can exceed
		// int range and wrap negative.
		if run > 63 {
			return q, 0, errors.New("sjpg: AC run overflows block")
		}
		i += int(run)
		if i >= 64 {
			return q, 0, errors.New("sjpg: AC run overflows block")
		}
		v, err := r.readVarint()
		if err != nil {
			return q, 0, err
		}
		q[i] = v
		i++
	}
	// A full block must still be terminated by its EOB.
	run, err := r.readUvarint()
	if err != nil {
		return q, 0, err
	}
	if run != eobRun {
		return q, 0, errors.New("sjpg: missing EOB")
	}
	return q, dc, nil
}

// colorConvertForward produces the three YCbCr planes, level-shifted to be
// centred on zero as the DCT expects.
func colorConvertForward(im *Image) [3][]float64 {
	n := im.W * im.H
	var planes [3][]float64
	for i := range planes {
		planes[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		y, cb, cr := rgbToYCbCr(im.Pix[i*3], im.Pix[i*3+1], im.Pix[i*3+2])
		planes[0][i] = y - 128
		planes[1][i] = cb - 128
		planes[2][i] = cr - 128
	}
	return planes
}

func colorConvertInverse(planes [3][]float64, w, h int) *Image {
	im := NewImage(w, h)
	for i := 0; i < w*h; i++ {
		r, g, b := yCbCrToRGB(planes[0][i]+128, planes[1][i]+128, planes[2][i]+128)
		im.Pix[i*3], im.Pix[i*3+1], im.Pix[i*3+2] = r, g, b
	}
	return im
}

// loadBlock copies an 8x8 tile from a plane, replicating edge samples for
// partial blocks (JPEG edge extension).
func loadBlock(blk *[64]float64, plane []float64, w, h, bx, by int) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			sy = h - 1
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				sx = w - 1
			}
			blk[y*8+x] = plane[sy*w+sx]
		}
	}
}

func storeBlock(blk *[64]float64, plane []float64, w, h, bx, by int) {
	for y := 0; y < 8; y++ {
		sy := by*8 + y
		if sy >= h {
			continue
		}
		for x := 0; x < 8; x++ {
			sx := bx*8 + x
			if sx >= w {
				continue
			}
			plane[sy*w+sx] = blk[y*8+x]
		}
	}
}
