// Package rng provides deterministic, named random-number streams for the
// simulator. Every stochastic component (dataset sizes, transform
// randomness, sampling skid, I/O jitter) draws from its own stream derived
// from a root seed plus a name, so adding randomness to one component never
// perturbs another — a property the experiment harness relies on to keep
// paper figures reproducible run to run.
package rng

import (
	"math"
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand with the
// distribution helpers the synthetic workloads need.
type Stream struct {
	r *rand.Rand
}

// nameHash is FNV-64a over the component name, inlined so that deriving a
// stream never allocates a hasher. It matches hash/fnv's Sum64 exactly,
// which keeps every historical stream sequence (and therefore every golden
// experiment output) byte-identical.
func nameHash(name string) int64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// New derives a stream from a root seed and a component name.
func New(seed int64, name string) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed ^ nameHash(name)))}
}

// NewFromSeed returns a stream seeded directly.
func NewFromSeed(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// Derive creates a child stream named relative to this one. The child's
// sequence is independent of how much the parent has been consumed.
func (s *Stream) Derive(name string) *Stream {
	return New(s.r.Int63(), name)
}

// Reseed resets the stream in place to exactly the state New(seed, name)
// would create, without allocating. Hot paths (one stream per sample per
// op) keep a scratch Stream and reseed it instead of building a fresh
// generator — math/rand's source is ~5 KB, which used to dominate the
// simulated epoch's heap churn.
func (s *Stream) Reseed(seed int64, name string) {
	s.r.Seed(seed ^ nameHash(name))
}

// DeriveInto reseeds child to the state Derive(name) would return, consuming
// one value from s exactly as Derive does.
func (s *Stream) DeriveInto(child *Stream, name string) *Stream {
	child.Reseed(s.r.Int63(), name)
	return child
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0, n). n must be positive.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.r.Float64() < p }

// Normal returns a normally distributed value.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a log-normally distributed value parameterized directly
// by the desired mean and standard deviation of the *resulting* distribution
// (not of the underlying normal). This matches how the paper reports the
// ImageNet file-size distribution: mean 111 KB, stddev 133 KB.
func (s *Stream) LogNormal(mean, stddev float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := stddev * stddev
	mu := math.Log(mean * mean / math.Sqrt(v+mean*mean))
	sigma := math.Sqrt(math.Log(1 + v/(mean*mean)))
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Exponential returns an exponentially distributed value with the given mean.
func (s *Stream) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
