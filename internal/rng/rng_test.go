package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamsAreDeterministic(t *testing.T) {
	a := New(42, "images")
	b := New(42, "images")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed+name diverged at draw %d", i)
		}
	}
}

func TestStreamsAreIndependentByName(t *testing.T) {
	a := New(42, "images")
	b := New(42, "io")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names produced %d/100 identical draws", same)
	}
}

func TestDeriveIndependentOfParentConsumption(t *testing.T) {
	// Deriving must be a pure function of the parent's state at derive time;
	// the same parent usage pattern yields the same child stream.
	p1 := New(7, "root")
	c1 := p1.Derive("child")
	p2 := New(7, "root")
	c2 := p2.Derive("child")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("derived streams diverged at draw %d", i)
		}
	}
}

func TestLogNormalMatchesMoments(t *testing.T) {
	// The paper's ImageNet distribution: mean 111 KB, stddev 133 KB. Check
	// sample moments land near the parameterization.
	s := New(1, "lognormal")
	const n = 200000
	mean, stddev := 111e3, 133e3
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.LogNormal(mean, stddev)
		if v <= 0 {
			t.Fatalf("lognormal produced non-positive value %v", v)
		}
		sum += v
		sumsq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumsq/n - m*m)
	if math.Abs(m-mean)/mean > 0.05 {
		t.Fatalf("sample mean %.0f, want ~%.0f", m, mean)
	}
	if math.Abs(sd-stddev)/stddev > 0.10 {
		t.Fatalf("sample stddev %.0f, want ~%.0f", sd, stddev)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(2, "normal")
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumsq/n - m*m)
	if math.Abs(m-5) > 0.05 {
		t.Fatalf("mean %.3f, want ~5", m)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("stddev %.3f, want ~2", sd)
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(3, "uniform")
	if err := quick.Check(func(rawLo, rawSpan float64) bool {
		lo := math.Mod(math.Abs(rawLo), 1000)
		span := math.Mod(math.Abs(rawSpan), 1000) + 0.001
		v := s.Uniform(lo, lo+span)
		return v >= lo && v < lo+span
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(4, "intn")
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5, "perm")
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(6, "bool")
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %.3f", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(7, "exp")
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Exponential(4)
	}
	if m := sum / n; math.Abs(m-4) > 0.1 {
		t.Fatalf("exponential mean %.3f, want ~4", m)
	}
}
