package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// These are the manifest crash-safety property tests: whatever we do to the
// manifest bytes — truncate at any offset, flip any byte, leave a
// half-renamed tmp behind — Open must recover to a consistent index holding
// only checksum-clean records, and Get must return either the exact
// original bytes or a miss. Never a panic, never stale bytes.

// buildStore populates dir with a mix of batch and sample records across
// several segments and returns the ground-truth payload map.
func buildStore(t *testing.T, dir string) map[Key][]byte {
	t.Helper()
	s := mustOpen(t, dir, Options{SegmentBytes: 2 << 10})
	want := map[Key][]byte{}
	for i := 0; i < 12; i++ {
		for _, k := range []Key{batchKey(i), sampleKey(i)} {
			p := payloadFor(k, 150+17*i)
			want[k] = p
			if err := s.Put(k, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// copyDir clones the store directory so each property-test iteration
// mutates a pristine copy.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// checkRecovery opens dir and asserts the core invariant: every Get is
// either the exact original payload or a clean miss. Returns the hit count.
func checkRecovery(t *testing.T, dir string, want map[Key][]byte) int {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open must recover, got error: %v", err)
	}
	defer s.Close()
	hits := 0
	for k, p := range want {
		got, ok := s.Get(k, nil)
		if !ok {
			continue
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("STALE BYTES served for %+v", k)
		}
		hits++
	}
	return hits
}

func TestManifestTruncationAlwaysRecovers(t *testing.T) {
	base := t.TempDir()
	want := buildStore(t, base)
	man, err := os.ReadFile(filepath.Join(base, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point would be O(len^2) file copies; step through a
	// spread of cut points including the structural boundaries.
	cuts := []int{0, 1, 4, 8, 11, 12, len(man) / 4, len(man) / 2, len(man) - 9, len(man) - 8, len(man) - 1}
	for step := 13; step < len(man); step += 13 {
		cuts = append(cuts, step)
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(man) {
			continue
		}
		dir := t.TempDir()
		copyDir(t, base, dir)
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), man[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// A truncated manifest fails its self-checksum, so recovery must
		// fall back to a full segment scan and find everything.
		if hits := checkRecovery(t, dir, want); hits != len(want) {
			t.Fatalf("cut=%d: rebuild recovered %d/%d records", cut, hits, len(want))
		}
	}
}

func TestManifestBitFlipsAlwaysRecover(t *testing.T) {
	base := t.TempDir()
	want := buildStore(t, base)
	man, err := os.ReadFile(filepath.Join(base, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(man); pos += 7 {
		dir := t.TempDir()
		copyDir(t, base, dir)
		flipped := append([]byte(nil), man...)
		flipped[pos] ^= 0x20
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		// Any single bit flip breaks the self-checksum → full rebuild →
		// every record recovered from the (intact) segments.
		if hits := checkRecovery(t, dir, want); hits != len(want) {
			t.Fatalf("flip@%d: recovered %d/%d records", pos, hits, len(want))
		}
	}
}

func TestHalfRenamedManifestUsesDurableCopy(t *testing.T) {
	base := t.TempDir()
	want := buildStore(t, base)
	dir := t.TempDir()
	copyDir(t, base, dir)
	// Crash mid-manifest-write: a garbage MANIFEST.tmp sits next to the
	// last durable MANIFEST. The tmp must be ignored and discarded.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.tmp"), []byte("garbage half-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if hits := checkRecovery(t, dir, want); hits != len(want) {
		t.Fatalf("recovered %d/%d records", hits, len(want))
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.tmp")); !os.IsNotExist(err) {
		t.Fatal("leftover MANIFEST.tmp not cleaned up")
	}
}

func TestSegmentCorruptionDropsOnlyDamagedRecords(t *testing.T) {
	base := t.TempDir()
	want := buildStore(t, base)
	segs, _ := filepath.Glob(filepath.Join(base, "seg-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	// With the manifest intact: a flipped payload byte is caught by Get's
	// read-time checksum; the rest of the store is untouched.
	t.Run("manifest-intact", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, base, dir)
		corruptOneByte(t, filepath.Join(dir, filepath.Base(segs[0])))
		hits := checkRecovery(t, dir, want)
		if hits == len(want) {
			t.Fatal("corruption went undetected")
		}
		if hits < len(want)-4 {
			t.Fatalf("one flipped byte dropped too much: %d/%d", hits, len(want))
		}
	})

	// Without the manifest: the rebuild scan itself must skip the damaged
	// record and keep everything behind it in the same segment.
	t.Run("rebuild", func(t *testing.T) {
		dir := t.TempDir()
		copyDir(t, base, dir)
		corruptOneByte(t, filepath.Join(dir, filepath.Base(segs[0])))
		if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
			t.Fatal(err)
		}
		hits := checkRecovery(t, dir, want)
		if hits == len(want) {
			t.Fatal("corruption went undetected")
		}
		if hits < len(want)-4 {
			t.Fatalf("rebuild dropped too much: %d/%d", hits, len(want))
		}
	})
}

// corruptOneByte flips a byte inside the first record's payload region.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) <= recordHeaderSize+10 {
		t.Fatalf("segment too short to corrupt: %d bytes", len(b))
	}
	b[recordHeaderSize+10] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSegmentAbandonsTailOnly(t *testing.T) {
	base := t.TempDir()
	want := buildStore(t, base)
	dir := t.TempDir()
	copyDir(t, base, dir)
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	// Chop the last segment mid-record and drop the manifest: the rebuild
	// must keep every complete record and abandon only the torn tail.
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-20); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	hits := checkRecovery(t, dir, want)
	if hits == len(want) {
		t.Fatal("truncation went undetected")
	}
	if hits < len(want)-2 {
		t.Fatalf("segment truncation dropped too much: %d/%d", hits, len(want))
	}
}

// FuzzDecodeManifest throws arbitrary bytes at the manifest decoder: it
// must never panic, and whatever it accepts must be structurally bounded.
func FuzzDecodeManifest(f *testing.F) {
	dir := f.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		k := batchKey(i)
		s.Put(k, payloadFor(k, 64))
	}
	s.Close()
	valid, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("LMAN"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		for _, e := range m.entries {
			if e.key.Kind != KindBatch && e.key.Kind != KindSample {
				t.Fatal("decoder accepted invalid kind")
			}
			if e.loc.len > maxPayload || e.loc.off < 0 {
				t.Fatal("decoder accepted unbounded location")
			}
		}
	})
}

// FuzzOpenWithArbitraryManifest plants fuzzer-chosen bytes as the MANIFEST
// over a real segment directory: Open must always succeed without panicking
// and must never serve bytes that differ from the originals.
func FuzzOpenWithArbitraryManifest(f *testing.F) {
	base := f.TempDir()
	s, err := Open(base, Options{SegmentBytes: 1 << 10})
	if err != nil {
		f.Fatal(err)
	}
	want := map[Key][]byte{}
	for i := 0; i < 6; i++ {
		k := sampleKey(i)
		p := payloadFor(k, 120)
		want[k] = p
		s.Put(k, p)
	}
	s.Close()
	valid, err := os.ReadFile(filepath.Join(base, "MANIFEST"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("LMANgarbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		entries, err := os.ReadDir(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range entries {
			b, err := os.ReadFile(filepath.Join(base, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, de.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open must recover from arbitrary manifests: %v", err)
		}
		defer st.Close()
		for k, p := range want {
			if got, ok := st.Get(k, nil); ok && !bytes.Equal(got, p) {
				t.Fatalf("stale bytes served for %+v", k)
			}
		}
	})
}
