// Package store is the persistent disk tier under the in-memory LRU caches:
// a content-addressed, checksummed segment store that survives process
// restarts and is shared across jobs with the same pipeline spec.
//
// Layout: records (encoded batch frames and split-point sample snapshots)
// are appended to segment files (seg-NNNNNN.seg) with a fixed header and a
// per-record FNV-1a payload checksum — the same hash the wire protocol uses
// for its stream checksums. A MANIFEST file indexes the records; it is
// written via write-temp + fsync + atomic rename and carries its own
// trailing checksum, so a torn or truncated manifest is detected on open
// and the index is rebuilt by scanning the segments, dropping any record
// that fails its checksum.
//
// Crash-safety contract: after any sequence of kills the store reopens to a
// consistent index containing only checksum-clean records. Get re-verifies
// the payload checksum on every read, so corrupt or stale bytes are never
// served — corruption degrades to a miss (and recompute upstream), never to
// wrong data.
//
// Eviction is segment-granular: when the byte budget is exceeded the
// least-recently-used sealed segment is deleted whole, together with its
// index entries. The active segment is never evicted.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"lotus/internal/faultinject"
)

// Kind tags the record namespace so batch frames and sample snapshots can
// never alias even with colliding fingerprints.
type Kind uint8

const (
	// KindBatch records hold encoded wire frames keyed by
	// (SpecFingerprint, epoch, globalID).
	KindBatch Kind = 1
	// KindSample records hold split-point sample snapshots keyed by
	// (PrefixFingerprint, sample index).
	KindSample Kind = 2
)

// Key addresses one record. FP is the spec or prefix fingerprint; A and B
// carry the per-kind coordinates (epoch/globalID for batches, sample
// index/0 for samples).
type Key struct {
	Kind Kind
	FP   uint64
	A    uint64
	B    uint64
}

// Options configures Open. The zero value means: unlimited budget, default
// segment size, default queue depth, no fault injection.
type Options struct {
	// Budget is the soft byte budget across all segment files; <= 0 means
	// unlimited. Exceeding it evicts whole LRU sealed segments.
	Budget int64
	// SegmentBytes is the roll-over threshold for the active segment
	// (default 4 MiB).
	SegmentBytes int64
	// QueueDepth bounds the async spill queue (default 256); PutAsync drops
	// (and counts) spills when the queue is full rather than blocking the
	// serving path.
	QueueDepth int
	// Faults injects torn-manifest and corrupt-append failures in chaos
	// runs. Nil injects nothing.
	Faults *faultinject.Injector
	// Logf receives recovery and I/O-error diagnostics. Nil discards.
	Logf func(format string, args ...any)
}

// Stats is the /metrics disk_cache block.
type Stats struct {
	BatchHits       int64 `json:"batch_hits"`
	BatchMisses     int64 `json:"batch_misses"`
	SampleHits      int64 `json:"sample_hits"`
	SampleMisses    int64 `json:"sample_misses"`
	Spills          int64 `json:"spills"`           // records appended
	SpillsDeduped   int64 `json:"spills_deduped"`   // already on disk
	SpillsDropped   int64 `json:"spills_dropped"`   // queue full or I/O error
	CorruptDropped  int64 `json:"corrupt_dropped"`  // checksum-failing records dropped
	Rebuilds        int64 `json:"rebuilds"`         // full index rebuilds from segment scans
	Segments        int   `json:"segments"`         // live segment files
	SegmentsEvicted int64 `json:"segments_evicted"` // segments deleted for budget
	Entries         int   `json:"entries"`          // indexed records
	BytesUsed       int64 `json:"bytes_used"`
	BytesBudget     int64 `json:"bytes_budget"`
}

// loc points at one record inside a segment. off is the record start (the
// header); the payload follows at off+recordHeaderSize.
type loc struct {
	seg uint32
	off int64
	len uint32
	sum uint64
}

type segment struct {
	id      uint32
	f       *os.File
	size    int64
	sealed  bool
	lastUse int64 // monotonic tick, for LRU eviction
}

type putReq struct {
	key     Key
	payload []byte // store-owned copy; nil means flush
	flush   bool
	done    chan error
}

// Store is a persistent cache tier. All methods are safe for concurrent
// use. Appends are serialized through one writer goroutine so the serving
// path never blocks on disk I/O (PutAsync) unless it asks to (Put/Flush).
type Store struct {
	dir  string
	opts Options

	// life guards the closed flag and the queue send against Close closing
	// the channel mid-send.
	life   sync.RWMutex
	closed bool
	queue  chan putReq
	wg     sync.WaitGroup

	// mu guards everything below, including reads of segment files: record
	// payloads are small and local, so holding mu across ReadAt keeps the
	// eviction/read race trivially correct.
	mu      sync.Mutex
	idx     map[Key]loc
	segs    map[uint32]*segment
	active  *segment
	nextSeg uint32
	tick    int64
	bytes   int64

	batchHits      int64
	batchMisses    int64
	sampleHits     int64
	sampleMisses   int64
	spills         int64
	spillsDeduped  int64
	spillsDropped  int64
	corruptDropped int64
	rebuilds       int64
	segsEvicted    int64
}

const defaultSegmentBytes = 4 << 20

// Open opens (or creates) the store at dir, recovering the index from the
// manifest plus a scan of any bytes appended after the last manifest write.
// A missing or corrupt manifest triggers a full rebuild from segment scans.
// All recovered segments are sealed; appends always go to a fresh segment,
// so recovery never overwrites bytes it just indexed.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		queue: make(chan putReq, opts.QueueDepth),
		idx:   make(map[Key]loc),
		segs:  make(map[uint32]*segment),
	}
	if err := s.recover(); err != nil {
		for _, seg := range s.segs {
			seg.f.Close()
		}
		return nil, err
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Get reads the record for key, verifying its checksum. alloc, when
// non-nil, provides the destination buffer (e.g. a pooled frame box) and
// must return a slice of at least the requested length; on a miss after
// alloc was called the caller's buffer is simply not returned, so callers
// that pool should allocate lazily via the callback. Corrupt records are
// dropped from the index and reported as misses — never served.
func (s *Store) Get(key Key, alloc func(n int) []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.idx[key]
	if !ok {
		s.missLocked(key.Kind)
		return nil, false
	}
	seg, ok := s.segs[l.seg]
	if !ok {
		delete(s.idx, key)
		s.missLocked(key.Kind)
		return nil, false
	}
	s.tick++
	seg.lastUse = s.tick
	var buf []byte
	if alloc != nil {
		buf = alloc(int(l.len))[:l.len]
	} else {
		buf = make([]byte, l.len)
	}
	if _, err := seg.f.ReadAt(buf, l.off+recordHeaderSize); err != nil {
		s.logf("store: read seg %d off %d: %v", l.seg, l.off, err)
		delete(s.idx, key)
		s.corruptDropped++
		s.missLocked(key.Kind)
		return nil, false
	}
	if fnv1a(buf) != l.sum {
		s.logf("store: checksum mismatch seg %d off %d, dropping record", l.seg, l.off)
		delete(s.idx, key)
		s.corruptDropped++
		s.missLocked(key.Kind)
		return nil, false
	}
	s.hitLocked(key.Kind)
	return buf, true
}

func (s *Store) hitLocked(k Kind) {
	if k == KindBatch {
		s.batchHits++
	} else {
		s.sampleHits++
	}
}

func (s *Store) missLocked(k Kind) {
	if k == KindBatch {
		s.batchMisses++
	} else {
		s.sampleMisses++
	}
}

// Contains reports whether key is indexed (without checksum verification or
// LRU touch).
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[key]
	return ok
}

// Drop removes key from the index (the bytes stay until the segment is
// evicted). Used when a stored record turns out to be undecodable.
func (s *Store) Drop(key Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[key]; ok {
		delete(s.idx, key)
		s.corruptDropped++
	}
}

// PutAsync enqueues payload for appending without blocking: if the spill
// queue is full the record is dropped and counted. The payload is copied
// before PutAsync returns; the caller keeps ownership of its slice.
func (s *Store) PutAsync(key Key, payload []byte) {
	s.life.RLock()
	defer s.life.RUnlock()
	if s.closed {
		return
	}
	s.mu.Lock()
	if _, ok := s.idx[key]; ok {
		s.spillsDeduped++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	cp := append([]byte(nil), payload...)
	select {
	case s.queue <- putReq{key: key, payload: cp}:
	default:
		s.mu.Lock()
		s.spillsDropped++
		s.mu.Unlock()
	}
}

// Put appends payload synchronously (waits for the write, not for fsync).
func (s *Store) Put(key Key, payload []byte) error {
	s.life.RLock()
	defer s.life.RUnlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	done := make(chan error, 1)
	cp := append([]byte(nil), payload...)
	s.queue <- putReq{key: key, payload: cp, done: done}
	return <-done
}

// Flush drains queued spills and durably writes the manifest.
func (s *Store) Flush() error {
	s.life.RLock()
	if s.closed {
		s.life.RUnlock()
		return nil
	}
	done := make(chan error, 1)
	s.queue <- putReq{flush: true, done: done}
	s.life.RUnlock()
	return <-done
}

// Close drains the spill queue, writes a final manifest, and closes every
// segment file. Safe to call twice.
func (s *Store) Close() error {
	s.life.Lock()
	if s.closed {
		s.life.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.life.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		s.active.f.Sync()
		s.active.sealed = true
		s.active = nil
	}
	err := s.writeManifestLocked()
	for _, seg := range s.segs {
		seg.f.Close()
	}
	return err
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		BatchHits:       s.batchHits,
		BatchMisses:     s.batchMisses,
		SampleHits:      s.sampleHits,
		SampleMisses:    s.sampleMisses,
		Spills:          s.spills,
		SpillsDeduped:   s.spillsDeduped,
		SpillsDropped:   s.spillsDropped,
		CorruptDropped:  s.corruptDropped,
		Rebuilds:        s.rebuilds,
		Segments:        len(s.segs),
		SegmentsEvicted: s.segsEvicted,
		Entries:         len(s.idx),
		BytesUsed:       s.bytes,
		BytesBudget:     s.opts.Budget,
	}
}

// writer is the single appender: it serializes segment writes, manifest
// writes, roll-over, and eviction, so the serving path never contends on
// disk I/O.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		if req.flush {
			s.mu.Lock()
			err := s.writeManifestLocked()
			s.mu.Unlock()
			req.done <- err
			continue
		}
		err := s.append(req.key, req.payload)
		if req.done != nil {
			req.done <- err
		}
	}
}

// append writes one record to the active segment, rolling and evicting as
// needed. Runs only on the writer goroutine.
func (s *Store) append(key Key, payload []byte) error {
	s.mu.Lock()
	if _, ok := s.idx[key]; ok {
		s.spillsDeduped++
		s.mu.Unlock()
		return nil
	}
	if s.active == nil {
		seg, err := s.newSegmentLocked()
		if err != nil {
			s.spillsDropped++
			s.mu.Unlock()
			s.logf("store: create segment: %v", err)
			return err
		}
		s.active = seg
	}
	seg := s.active
	off := seg.size
	s.mu.Unlock()

	sum := fnv1a(payload)
	hdr := encodeRecordHeader(key, uint32(len(payload)), sum)
	if s.opts.Faults.NextDiskAppendCorrupt() && len(payload) > 0 {
		// Bit rot after checksumming: the record lands structurally valid
		// but its payload no longer matches its checksum.
		payload[len(payload)/2] ^= 0x40
	}
	if _, err := seg.f.WriteAt(hdr[:], off); err != nil {
		s.countDrop(err)
		return err
	}
	if _, err := seg.f.WriteAt(payload, off+recordHeaderSize); err != nil {
		s.countDrop(err)
		return err
	}
	recLen := recordHeaderSize + int64(len(payload))

	s.mu.Lock()
	seg.size += recLen
	s.bytes += recLen
	s.tick++
	seg.lastUse = s.tick
	s.idx[key] = loc{seg: seg.id, off: off, len: uint32(len(payload)), sum: sum}
	s.spills++
	roll := seg.size >= s.opts.SegmentBytes
	if roll {
		seg.sealed = true
		s.active = nil
	}
	s.evictLocked()
	s.mu.Unlock()

	if roll {
		seg.f.Sync()
		s.mu.Lock()
		err := s.writeManifestLocked()
		s.mu.Unlock()
		if err != nil {
			s.logf("store: manifest write: %v", err)
		}
	}
	return nil
}

func (s *Store) countDrop(err error) {
	s.mu.Lock()
	s.spillsDropped++
	s.mu.Unlock()
	s.logf("store: append: %v", err)
}

func (s *Store) newSegmentLocked() (*segment, error) {
	id := s.nextSeg
	s.nextSeg++
	path := filepath.Join(s.dir, segmentName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	seg := &segment{id: id, f: f}
	s.segs[id] = seg
	return seg, nil
}

// SetBudget retargets the soft byte budget at runtime (the controller's
// disk-tier knob); <= 0 is ignored (a controller cannot un-bound the store).
// Shrinking evicts LRU sealed segments down to the new bound immediately.
func (s *Store) SetBudget(budget int64) {
	if budget <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Budget = budget
	s.evictLocked()
}

// evictLocked deletes LRU sealed segments until the byte budget holds. The
// active segment is never evicted.
func (s *Store) evictLocked() {
	if s.opts.Budget <= 0 {
		return
	}
	for s.bytes > s.opts.Budget {
		var victim *segment
		for _, seg := range s.segs {
			if !seg.sealed {
				continue
			}
			if victim == nil || seg.lastUse < victim.lastUse {
				victim = seg
			}
		}
		if victim == nil {
			return
		}
		victim.f.Close()
		os.Remove(filepath.Join(s.dir, segmentName(victim.id)))
		for k, l := range s.idx {
			if l.seg == victim.id {
				delete(s.idx, k)
			}
		}
		s.bytes -= victim.size
		delete(s.segs, victim.id)
		s.segsEvicted++
	}
}

func segmentName(id uint32) string { return fmt.Sprintf("seg-%06d.seg", id) }

// fnv1a is the FNV-1a 64 hash — the same checksum family the wire protocol
// uses for its per-epoch stream checksums.
func fnv1a(b []byte) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
