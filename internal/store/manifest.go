package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// On-disk formats. All integers are big-endian.
//
// Record (in a segment file):
//
//	u32 magic "LREC" | u8 kind | u64 fp | u64 a | u64 b |
//	u32 payloadLen   | u64 payloadSum(FNV-1a) | payload...
//
// Manifest (MANIFEST, written tmp+fsync+rename):
//
//	u32 magic "LMAN" | u32 version |
//	u32 segCount   | segCount  x (u32 id | u64 durableSize) |
//	u32 entryCount | entryCount x (u8 kind | u64 fp | u64 a | u64 b |
//	                               u32 seg | u64 off | u32 len | u64 sum) |
//	u64 selfSum(FNV-1a of all preceding bytes)
const (
	recordMagic      = uint32(0x4C524543) // "LREC"
	manifestMagic    = uint32(0x4C4D414E) // "LMAN"
	manifestVersion  = uint32(1)
	recordHeaderSize = 4 + 1 + 8 + 8 + 8 + 4 + 8
	manifestName     = "MANIFEST"
	// maxPayload bounds payload lengths accepted during recovery scans so a
	// corrupt length field cannot trigger a huge allocation.
	maxPayload = 1 << 30
)

func encodeRecordHeader(key Key, payloadLen uint32, sum uint64) [recordHeaderSize]byte {
	var h [recordHeaderSize]byte
	binary.BigEndian.PutUint32(h[0:], recordMagic)
	h[4] = byte(key.Kind)
	binary.BigEndian.PutUint64(h[5:], key.FP)
	binary.BigEndian.PutUint64(h[13:], key.A)
	binary.BigEndian.PutUint64(h[21:], key.B)
	binary.BigEndian.PutUint32(h[29:], payloadLen)
	binary.BigEndian.PutUint64(h[33:], sum)
	return h
}

// writeManifestLocked durably replaces MANIFEST with the current index:
// write to MANIFEST.tmp, fsync, atomically rename over MANIFEST, fsync the
// directory. A torn-manifest fault truncates the tmp file before the rename
// — modeling a crash where the rename was reordered before the data blocks —
// which the self-checksum catches on the next open.
func (s *Store) writeManifestLocked() error {
	buf := s.encodeManifestLocked()
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: manifest tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: manifest write: %w", err)
	}
	if s.opts.Faults.NextManifestTorn() {
		f.Truncate(int64(len(buf) / 2))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: manifest close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: manifest rename: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (s *Store) encodeManifestLocked() []byte {
	segIDs := make([]uint32, 0, len(s.segs))
	for id := range s.segs {
		segIDs = append(segIDs, id)
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })

	keys := make([]Key, 0, len(s.idx))
	for k := range s.idx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.FP != b.FP {
			return a.FP < b.FP
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})

	buf := make([]byte, 0, 12+len(segIDs)*12+len(keys)*49+8)
	buf = binary.BigEndian.AppendUint32(buf, manifestMagic)
	buf = binary.BigEndian.AppendUint32(buf, manifestVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(segIDs)))
	for _, id := range segIDs {
		buf = binary.BigEndian.AppendUint32(buf, id)
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.segs[id].size))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		l := s.idx[k]
		buf = append(buf, byte(k.Kind))
		buf = binary.BigEndian.AppendUint64(buf, k.FP)
		buf = binary.BigEndian.AppendUint64(buf, k.A)
		buf = binary.BigEndian.AppendUint64(buf, k.B)
		buf = binary.BigEndian.AppendUint32(buf, l.seg)
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.off))
		buf = binary.BigEndian.AppendUint32(buf, l.len)
		buf = binary.BigEndian.AppendUint64(buf, l.sum)
	}
	buf = binary.BigEndian.AppendUint64(buf, fnv1a(buf))
	return buf
}

type manifestEntry struct {
	key Key
	loc loc
}

type manifest struct {
	durable map[uint32]int64 // segment id -> size covered by this manifest
	entries []manifestEntry
}

// decodeManifest parses and self-checks a manifest image. Any structural
// damage — short file, bad magic, counts past EOF, checksum mismatch —
// returns an error; the caller falls back to a full rebuild.
func decodeManifest(buf []byte) (*manifest, error) {
	if len(buf) < 12+8 {
		return nil, fmt.Errorf("store: manifest too short (%d bytes)", len(buf))
	}
	body, tail := buf[:len(buf)-8], buf[len(buf)-8:]
	if fnv1a(body) != binary.BigEndian.Uint64(tail) {
		return nil, fmt.Errorf("store: manifest checksum mismatch")
	}
	if binary.BigEndian.Uint32(body[0:]) != manifestMagic {
		return nil, fmt.Errorf("store: bad manifest magic")
	}
	if v := binary.BigEndian.Uint32(body[4:]); v != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d", v)
	}
	p := 8
	need := func(n int) error {
		if len(body)-p < n {
			return fmt.Errorf("store: manifest truncated at %d", p)
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	segCount := int(binary.BigEndian.Uint32(body[p:]))
	p += 4
	m := &manifest{durable: make(map[uint32]int64, segCount)}
	for i := 0; i < segCount; i++ {
		if err := need(12); err != nil {
			return nil, err
		}
		id := binary.BigEndian.Uint32(body[p:])
		size := int64(binary.BigEndian.Uint64(body[p+4:]))
		if size < 0 {
			return nil, fmt.Errorf("store: manifest segment %d negative size", id)
		}
		m.durable[id] = size
		p += 12
	}
	if err := need(4); err != nil {
		return nil, err
	}
	entryCount := int(binary.BigEndian.Uint32(body[p:]))
	p += 4
	for i := 0; i < entryCount; i++ {
		if err := need(49); err != nil {
			return nil, err
		}
		e := manifestEntry{
			key: Key{
				Kind: Kind(body[p]),
				FP:   binary.BigEndian.Uint64(body[p+1:]),
				A:    binary.BigEndian.Uint64(body[p+9:]),
				B:    binary.BigEndian.Uint64(body[p+17:]),
			},
			loc: loc{
				seg: binary.BigEndian.Uint32(body[p+25:]),
				off: int64(binary.BigEndian.Uint64(body[p+29:])),
				len: binary.BigEndian.Uint32(body[p+37:]),
				sum: binary.BigEndian.Uint64(body[p+41:]),
			},
		}
		if e.key.Kind != KindBatch && e.key.Kind != KindSample {
			return nil, fmt.Errorf("store: manifest entry %d bad kind %d", i, e.key.Kind)
		}
		if e.loc.off < 0 || e.loc.len > maxPayload {
			return nil, fmt.Errorf("store: manifest entry %d bad location", i)
		}
		m.entries = append(m.entries, e)
		p += 49
	}
	if p != len(body) {
		return nil, fmt.Errorf("store: manifest has %d trailing bytes", len(body)-p)
	}
	return m, nil
}

// recover rebuilds the in-memory index on Open. With a valid manifest it
// trusts the manifest's entries (bounds-checked against the live files) and
// scans only each segment's suffix beyond the manifest-recorded durable
// size, picking up records appended after the last manifest write. With a
// missing or corrupt manifest and segments on disk it rebuilds the whole
// index by scanning every segment (counted in Stats.Rebuilds). Records that
// fail their checksum are dropped; structural damage stops the scan of that
// segment. Every recovered segment is sealed.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: readdir %s: %w", s.dir, err)
	}
	var maxID uint32
	haveSegs := false
	for _, de := range names {
		name := de.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, "seg-%06d.seg", &id); err != nil {
			s.logf("store: ignoring unparseable segment name %q", name)
			continue
		}
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			s.logf("store: open %s: %v", name, err)
			continue
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			continue
		}
		s.segs[id] = &segment{id: id, f: f, size: st.Size(), sealed: true}
		s.bytes += st.Size()
		if id >= maxID {
			maxID = id + 1
		}
		haveSegs = true
	}
	s.nextSeg = maxID

	var man *manifest
	if buf, err := os.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		man, err = decodeManifest(buf)
		if err != nil {
			s.logf("store: %v; rebuilding index from segments", err)
			man = nil
		}
	}
	// A leftover MANIFEST.tmp is a crashed write; the renamed MANIFEST (or
	// the rebuild) is authoritative, so discard it.
	os.Remove(filepath.Join(s.dir, manifestName+".tmp"))

	switch {
	case man != nil:
		for _, e := range man.entries {
			seg, ok := s.segs[e.loc.seg]
			if !ok || e.loc.off+recordHeaderSize+int64(e.loc.len) > seg.size {
				s.corruptDropped++
				continue
			}
			s.idx[e.key] = e.loc
		}
		// Scan each segment's suffix for records appended after the last
		// manifest write (the crash-between-append-and-manifest window).
		for id, seg := range s.segs {
			durable := man.durable[id]
			if durable < 0 || durable > seg.size {
				durable = 0
			}
			s.scanSegment(seg, durable)
		}
	case haveSegs:
		s.rebuilds++
		for _, seg := range s.segs {
			s.scanSegment(seg, 0)
		}
	}
	return nil
}

// scanSegment walks records from off to the end of the segment, indexing
// checksum-clean ones. A record whose payload fails its checksum is skipped
// (the header told us its length, so the scan continues behind it);
// structural damage — bad magic, truncated header or payload, absurd length
// — ends the scan, abandoning the tail.
func (s *Store) scanSegment(seg *segment, off int64) {
	var hdr [recordHeaderSize]byte
	for off+recordHeaderSize <= seg.size {
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			s.logf("store: scan seg %d off %d: %v", seg.id, off, err)
			return
		}
		if binary.BigEndian.Uint32(hdr[0:]) != recordMagic {
			s.logf("store: scan seg %d off %d: bad record magic, abandoning tail", seg.id, off)
			return
		}
		kind := Kind(hdr[4])
		if kind != KindBatch && kind != KindSample {
			s.logf("store: scan seg %d off %d: bad kind %d, abandoning tail", seg.id, off, kind)
			return
		}
		plen := binary.BigEndian.Uint32(hdr[29:])
		if plen > maxPayload || off+recordHeaderSize+int64(plen) > seg.size {
			s.logf("store: scan seg %d off %d: truncated record, abandoning tail", seg.id, off)
			return
		}
		key := Key{
			Kind: kind,
			FP:   binary.BigEndian.Uint64(hdr[5:]),
			A:    binary.BigEndian.Uint64(hdr[13:]),
			B:    binary.BigEndian.Uint64(hdr[21:]),
		}
		sum := binary.BigEndian.Uint64(hdr[33:])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(io.NewSectionReader(seg.f, off+recordHeaderSize, int64(plen)), payload); err != nil {
			s.logf("store: scan seg %d off %d: %v", seg.id, off, err)
			return
		}
		if fnv1a(payload) == sum {
			s.idx[key] = loc{seg: seg.id, off: off, len: plen, sum: sum}
		} else {
			s.corruptDropped++
			s.logf("store: scan seg %d off %d: checksum mismatch, dropping record", seg.id, off)
		}
		off += recordHeaderSize + int64(plen)
	}
}
