package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotus/internal/faultinject"
)

func batchKey(i int) Key {
	return Key{Kind: KindBatch, FP: 0xABCD, A: 0, B: uint64(i)}
}

func sampleKey(i int) Key {
	return Key{Kind: KindSample, FP: 0x1234, A: uint64(i)}
}

// payloadFor builds a deterministic, content-distinct payload per key.
func payloadFor(k Key, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(k.Kind)*31 + int(k.FP) + int(k.A)*7 + int(k.B)*13 + i)
	}
	return b
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()

	want := map[Key][]byte{}
	for i := 0; i < 10; i++ {
		for _, k := range []Key{batchKey(i), sampleKey(i)} {
			p := payloadFor(k, 100+i)
			want[k] = p
			if err := s.Put(k, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k, p := range want {
		got, ok := s.Get(k, nil)
		if !ok {
			t.Fatalf("miss for %+v", k)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("payload mismatch for %+v", k)
		}
	}
	st := s.Stats()
	if st.Spills != 20 || st.Entries != 20 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BatchHits != 10 || st.SampleHits != 10 {
		t.Fatalf("hit stats: %+v", st)
	}
	if _, ok := s.Get(batchKey(99), nil); ok {
		t.Fatal("unexpected hit")
	}
	if s.Stats().BatchMisses != 1 {
		t.Fatalf("miss stats: %+v", s.Stats())
	}
}

func TestGetWithAllocCallback(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := batchKey(0)
	p := payloadFor(k, 64)
	if err := s.Put(k, p); err != nil {
		t.Fatal(err)
	}
	backing := make([]byte, 0, 128)
	got, ok := s.Get(k, func(n int) []byte { return backing[:0][:n] })
	if !ok || !bytes.Equal(got, p) {
		t.Fatal("alloc-callback get failed")
	}
	if &got[0] != &backing[:1][0] {
		t.Fatal("Get did not use the caller-provided buffer")
	}
}

func TestPutDedup(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := batchKey(1)
	p := payloadFor(k, 32)
	for i := 0; i < 3; i++ {
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Spills != 1 || st.SpillsDeduped != 2 {
		t.Fatalf("dedup stats: %+v", st)
	}
}

func TestPutAsyncAndFlush(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := sampleKey(7)
	p := payloadFor(k, 48)
	s.PutAsync(k, p)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k, nil)
	if !ok || !bytes.Equal(got, p) {
		t.Fatal("PutAsync record not readable after Flush")
	}
}

func TestReopenWarmFromManifest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := map[Key][]byte{}
	for i := 0; i < 8; i++ {
		k := batchKey(i)
		p := payloadFor(k, 200)
		want[k] = p
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Rebuilds != 0 {
		t.Fatalf("clean reopen should not rebuild: %+v", st)
	}
	if st.Entries != len(want) {
		t.Fatalf("expected %d entries, got %+v", len(want), st)
	}
	for k, p := range want {
		got, ok := s2.Get(k, nil)
		if !ok || !bytes.Equal(got, p) {
			t.Fatalf("warm reopen lost %+v", k)
		}
	}
}

func TestReopenRebuildsWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	want := map[Key][]byte{}
	for i := 0; i < 8; i++ {
		k := sampleKey(i)
		p := payloadFor(k, 150)
		want[k] = p
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL-equivalent: the manifest never made it to disk.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("expected one rebuild: %+v", st)
	}
	for k, p := range want {
		got, ok := s2.Get(k, nil)
		if !ok || !bytes.Equal(got, p) {
			t.Fatalf("rebuild lost %+v", k)
		}
	}
}

// TestRecoverAppendsBeyondManifest covers the crash window between an
// append and the next manifest write: the manifest is stale but valid, and
// the suffix scan must pick up the newer records.
func TestRecoverAppendsBeyondManifest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k0 := batchKey(0)
	p0 := payloadFor(k0, 100)
	if err := s.Put(k0, p0); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // manifest covers k0 only
		t.Fatal(err)
	}
	man, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	k1 := batchKey(1)
	p1 := payloadFor(k1, 100)
	if err := s.Put(k1, p1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Roll back the manifest to the pre-k1 image, as if the process died
	// right after the k1 append.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), man, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.Rebuilds != 0 {
		t.Fatalf("stale-but-valid manifest should not count as rebuild: %+v", st)
	}
	for _, kv := range []struct {
		k Key
		p []byte
	}{{k0, p0}, {k1, p1}} {
		got, ok := s2.Get(kv.k, nil)
		if !ok || !bytes.Equal(got, kv.p) {
			t.Fatalf("suffix scan lost %+v", kv.k)
		}
	}
}

func TestSegmentRollAndEviction(t *testing.T) {
	dir := t.TempDir()
	// ~1KiB records, 4KiB segments, 12KiB budget: forces rolls and evictions.
	s := mustOpen(t, dir, Options{SegmentBytes: 4 << 10, Budget: 12 << 10})
	defer s.Close()
	n := 40
	for i := 0; i < n; i++ {
		k := batchKey(i)
		if err := s.Put(k, payloadFor(k, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SegmentsEvicted == 0 {
		t.Fatalf("expected evictions: %+v", st)
	}
	if st.BytesUsed > st.BytesBudget+(4<<10)+recordHeaderSize+1024 {
		t.Fatalf("bytes way over budget: %+v", st)
	}
	// Recent entries survive (LRU evicts oldest segments first).
	k := batchKey(n - 1)
	got, ok := s.Get(k, nil)
	if !ok || !bytes.Equal(got, payloadFor(k, 1024)) {
		t.Fatal("most recent entry evicted")
	}
	// Evicted entries are clean misses.
	if _, ok := s.Get(batchKey(0), nil); ok {
		t.Fatal("oldest entry should have been evicted")
	}
}

func TestCorruptAppendDetectedOnRead(t *testing.T) {
	inj := faultinject.New(faultinject.Spec{CorruptDiskAppend: 2})
	s := mustOpen(t, t.TempDir(), Options{Faults: inj})
	defer s.Close()
	for i := 0; i < 4; i++ {
		k := batchKey(i)
		if err := s.Put(k, payloadFor(k, 128)); err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for i := 0; i < 4; i++ {
		k := batchKey(i)
		got, ok := s.Get(k, nil)
		if ok {
			if !bytes.Equal(got, payloadFor(k, 128)) {
				t.Fatalf("served corrupt bytes for %+v", k)
			}
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("expected exactly one corrupt record, got %d hits", hits)
	}
	st := s.Stats()
	if st.CorruptDropped != 1 {
		t.Fatalf("corrupt stats: %+v", st)
	}
	if got := inj.Counts().DiskFaults; got != 1 {
		t.Fatalf("expected 1 injected disk fault, got %d", got)
	}
	// The dropped record stays dropped: a second Get is a plain miss.
	misses := s.Stats().BatchMisses
	for i := 0; i < 4; i++ {
		s.Get(batchKey(i), nil)
	}
	if s.Stats().BatchMisses != misses+1 {
		t.Fatalf("re-read stats: %+v", s.Stats())
	}
}

func TestTornManifestForcesRebuild(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Spec{TornManifest: 1})
	s := mustOpen(t, dir, Options{Faults: inj})
	want := map[Key][]byte{}
	for i := 0; i < 6; i++ {
		k := sampleKey(i)
		p := payloadFor(k, 90)
		want[k] = p
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // first (and only) manifest write is torn
	if got := inj.Counts().DiskFaults; got != 1 {
		t.Fatalf("expected 1 injected disk fault, got %d", got)
	}

	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.Rebuilds != 1 {
		t.Fatalf("torn manifest must force a rebuild: %+v", st)
	}
	for k, p := range want {
		got, ok := s2.Get(k, nil)
		if !ok || !bytes.Equal(got, p) {
			t.Fatalf("rebuild after torn manifest lost %+v", k)
		}
	}
}

func TestDropRemovesEntry(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	k := sampleKey(3)
	if err := s.Put(k, payloadFor(k, 40)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(k) {
		t.Fatal("Contains miss")
	}
	s.Drop(k)
	if s.Contains(k) {
		t.Fatal("Drop did not remove entry")
	}
	if _, ok := s.Get(k, nil); ok {
		t.Fatal("dropped entry served")
	}
}

func TestCloseIdempotentAndRejectsWrites(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.PutAsync(batchKey(0), []byte("x")) // must not panic
	if err := s.Put(batchKey(0), []byte("x")); err == nil {
		t.Fatal("Put after Close should error")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{SegmentBytes: 8 << 10})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			k := batchKey(i)
			s.PutAsync(k, payloadFor(k, 256))
		}
	}()
	for i := 0; i < 200; i++ {
		k := sampleKey(i)
		if err := s.Put(k, payloadFor(k, 64)); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(k, nil); !ok || !bytes.Equal(got, payloadFor(k, 64)) {
			t.Fatalf("lost own write %d", i)
		}
		s.Get(batchKey(i), nil) // may hit or miss; must never be wrong
	}
	<-done
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestStableAcrossManyReopens(t *testing.T) {
	dir := t.TempDir()
	want := map[Key][]byte{}
	for round := 0; round < 5; round++ {
		s := mustOpen(t, dir, Options{SegmentBytes: 2 << 10})
		for k, p := range want {
			got, ok := s.Get(k, nil)
			if !ok || !bytes.Equal(got, p) {
				t.Fatalf("round %d lost %+v", round, k)
			}
		}
		k := batchKey(round)
		p := payloadFor(k, 300+round)
		want[k] = p
		if err := s.Put(k, p); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs int
	for _, de := range names {
		if strings.HasPrefix(de.Name(), "seg-") {
			segs++
		}
	}
	if segs != 5 {
		t.Fatalf("each reopen should start one fresh segment, got %d files", segs)
	}
}
