// Package testutil holds assertion helpers shared by the repository's test
// suites and the chaos sweep harness. Production packages must not import
// it.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// goroutineProfile snapshots every live goroutine's stack.
func goroutineProfile() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}

// interesting reports whether one goroutine stack counts toward a leak.
// Runtime-internal and testing-harness goroutines are always running; they
// are noise, not leaks.
func interesting(stack string) bool {
	for _, benign := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"testing.runTests",
		"testing.Main",
		"runtime.goexit",
		"runtime/pprof",
		"testutil.goroutineProfile",
		"created by runtime",
		"signal.signal_recv",
		"runtime.gc",
		"runtime.MHeap",
		"GC worker",
		"finalizer",
	} {
		if strings.Contains(stack, benign) {
			return false
		}
	}
	return true
}

func countInteresting() (int, string) {
	prof := goroutineProfile()
	n := 0
	var stacks []string
	for _, g := range strings.Split(prof, "\n\n") {
		if strings.TrimSpace(g) == "" || !interesting(g) {
			continue
		}
		n++
		stacks = append(stacks, g)
	}
	return n, strings.Join(stacks, "\n\n")
}

// failer is the slice of *testing.T the checker needs (an interface so the
// non-test package does not import testing).
type failer interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckGoroutines snapshots the interesting goroutine count; the returned
// function re-counts and fails the test if goroutines remain above the
// baseline after a grace period. Use as:
//
//	defer testutil.CheckGoroutines(t)()
//
// at the top of any test that starts servers, clients, or pipelines — the
// teardown paths under test must not strand producer or worker goroutines.
func CheckGoroutines(t failer) func() {
	before, _ := countInteresting()
	return func() {
		t.Helper()
		// Goroutines unwind asynchronously after Close/Shutdown returns;
		// poll with a deadline instead of failing on the first count.
		deadline := time.Now().Add(5 * time.Second)
		var after int
		var stacks string
		for {
			after, stacks = countInteresting()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d interesting goroutines before, %d after\n%s",
				before, after, stacks)
		}
	}
}

// NoLeaksNow asserts immediately (no grace period) — for sweep runners that
// check between iterations rather than at test end.
func NoLeaksNow(baseline int) error {
	after, stacks := countInteresting()
	if after > baseline {
		return fmt.Errorf("goroutine leak: baseline %d, now %d\n%s", baseline, after, stacks)
	}
	return nil
}

// WaitNoLeaks polls until the interesting-goroutine count returns to the
// baseline or the timeout expires — teardown paths unwind asynchronously
// after Close/Shutdown returns, so an immediate count would flake.
func WaitNoLeaks(baseline int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		err := NoLeaksNow(baseline)
		if err == nil || time.Now().After(deadline) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Baseline returns the current interesting-goroutine count for NoLeaksNow.
func Baseline() int {
	n, _ := countInteresting()
	return n
}
