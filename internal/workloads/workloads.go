// Package workloads assembles the three MLPerf training pipelines the paper
// characterizes (§ V-A) from the substrate packages: Image Classification
// (ImageNet + ResNet18), Image Segmentation (kits19 + U-Net3D), and Object
// Detection (COCO + Mask R-CNN). Each Spec carries the paper's default
// configuration and GPU-side timing calibrated to reproduce the paper's
// bottleneck structure: IC preprocessing-bound, IS and OD GPU-bound.
package workloads

import (
	"fmt"

	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/gpusim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

// Kind identifies a pipeline.
type Kind string

const (
	IC Kind = "IC"
	IS Kind = "IS"
	OD Kind = "OD"
	// ICA is the augmented image-classification pipeline: a deterministic
	// decode+resize prefix followed by per-epoch random crop, flip, and
	// pixel noise. It is the workload the split-point sample cache exists
	// for — the batch cache misses every epoch (bytes differ), but the
	// prefix hits.
	ICA Kind = "ICA"
)

// Spec is a fully parameterized workload run.
type Spec struct {
	Kind       Kind
	NumSamples int
	BatchSize  int
	NumWorkers int
	// Prefetch overrides the DataLoader's prefetch factor (0 = default 2).
	Prefetch  int
	GPUs      int
	GPU       gpusim.GPUConfig
	Seed      int64
	Arch      native.Arch
	Shuffle   bool
	PinMemory bool
	// WorkScale stretches simulated work (profiler-interference modeling).
	WorkScale float64
	// PerLogCost is forwarded to the hooks when tracing.
	PerLogCost time.Duration
	// OfflineDecode replaces the online decode with a pre-decoded raw read
	// (Takeaway 2's offline-preprocessing strategy). Image pipelines only.
	OfflineDecode bool
	// Dispatch selects the DataLoader's index-dispatch policy; SizeAware
	// additionally wires a per-sample cost hint from the dataset's record
	// sizes.
	Dispatch  pipeline.DispatchPolicy
	SizeAware bool
	// Cache, when non-nil, models the OS page cache in front of the dataset
	// mount; it persists across epochs in RunEpochs (the mechanism behind
	// epoch-2 speedups in the caching literature the paper surveys).
	Cache *data.PageCache
}

// ICSpec returns the paper's image-classification pipeline: Table II uses
// batch 128, 1 GPU, 1 data loader. ResNet18 on a V100 is fast relative to
// decode-heavy preprocessing, which is what makes IC preprocessing-bound.
func ICSpec(samples int, seed int64) Spec {
	return Spec{
		Kind:       IC,
		NumSamples: samples,
		BatchSize:  128,
		NumWorkers: 1,
		GPUs:       1,
		GPU:        gpusim.GPUConfig{PerSample: 300 * time.Microsecond, PerBatch: 20 * time.Millisecond},
		Seed:       seed,
		Arch:       native.Intel,
		Shuffle:    true,
		PinMemory:  true,
	}
}

// ISSpec returns the image-segmentation pipeline: batch 2, 1 GPU, 8 data
// loaders; U-Net3D takes ~750 ms per batch, making the GPU the bottleneck.
func ISSpec(samples int, seed int64) Spec {
	return Spec{
		Kind:       IS,
		NumSamples: samples,
		BatchSize:  2,
		NumWorkers: 8,
		GPUs:       1,
		GPU:        gpusim.GPUConfig{PerSample: 350 * time.Millisecond, PerBatch: 50 * time.Millisecond},
		Seed:       seed,
		Arch:       native.Intel,
		Shuffle:    true,
		PinMemory:  true,
	}
}

// ODSpec returns the object-detection pipeline: batch 2, 1 GPU, 4 data
// loaders; Mask R-CNN takes ~250 ms per batch (GPU-bound).
func ODSpec(samples int, seed int64) Spec {
	return Spec{
		Kind:       OD,
		NumSamples: samples,
		BatchSize:  2,
		NumWorkers: 4,
		GPUs:       1,
		GPU:        gpusim.GPUConfig{PerSample: 115 * time.Millisecond, PerBatch: 20 * time.Millisecond},
		Seed:       seed,
		Arch:       native.Intel,
		Shuffle:    true,
		PinMemory:  true,
	}
}

// ICASpec returns the augmented image-classification pipeline: IC's dataset
// and GPU timing, but with the decode followed by a deterministic Resize so
// the random crop/flip/noise suffix is the only per-epoch work. Four workers
// match the serving layer's augmented-bench configuration.
func ICASpec(samples int, seed int64) Spec {
	return Spec{
		Kind:       ICA,
		NumSamples: samples,
		BatchSize:  128,
		NumWorkers: 4,
		GPUs:       1,
		GPU:        gpusim.GPUConfig{PerSample: 300 * time.Microsecond, PerBatch: 20 * time.Millisecond},
		Seed:       seed,
		Arch:       native.Intel,
		Shuffle:    true,
		PinMemory:  true,
	}
}

// OpOrder returns the pipeline's operation names in Table II column order.
func (s Spec) OpOrder() []string {
	switch s.Kind {
	case IC:
		return []string{"Loader", "RandomResizedCrop", "RandomHorizontalFlip", "ToTensor", "Normalize", "Collate"}
	case ICA:
		return []string{"Loader", "Resize", "RandomCrop", "RandomHorizontalFlip", "RandomPixelNoise", "ToTensor", "Normalize", "Collate"}
	case IS:
		return []string{"Loader", "RandBalancedCrop", "RandomFlip", "Cast", "RandomBrightnessAugmentation", "GaussianNoise", "Collate"}
	case OD:
		return []string{"Loader", "Resize", "RandomHorizontalFlip", "ToTensor", "Normalize", "Collate"}
	}
	panic(fmt.Sprintf("workloads: unknown kind %q", s.Kind))
}

// Compose builds the transform chain for the spec.
func (s Spec) Compose(hooks *pipeline.Hooks) *pipeline.Compose {
	var c *pipeline.Compose
	loader := pipeline.Transform(&pipeline.Loader{IO: data.DefaultIO(), Cache: s.Cache})
	if s.OfflineDecode {
		loader = &pipeline.RawLoader{IO: data.DefaultIO(), Cache: s.Cache}
	}
	switch s.Kind {
	case IC:
		c = pipeline.NewCompose(
			loader,
			&pipeline.RandomResizedCrop{Size: 224},
			&pipeline.RandomHorizontalFlip{},
			&pipeline.ToTensor{},
			&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
		)
	case ICA:
		c = pipeline.NewCompose(
			loader,
			&pipeline.Resize{W: 256, H: 256},
			&pipeline.RandomCrop{Size: 224},
			&pipeline.RandomHorizontalFlip{},
			&pipeline.RandomPixelNoise{},
			&pipeline.ToTensor{},
			&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
		)
	case IS:
		c = pipeline.NewCompose(
			&pipeline.VolumeLoader{IO: data.DefaultIO(), Cache: s.Cache},
			&pipeline.RandBalancedCrop{Patch: [3]int{128, 128, 128}, OversampleP: 0.4},
			&pipeline.RandomFlip{},
			&pipeline.Cast{},
			&pipeline.RandomBrightnessAugmentation{},
			&pipeline.GaussianNoise{},
		)
	case OD:
		c = pipeline.NewCompose(
			loader,
			&pipeline.Resize{W: 800, H: 800},
			&pipeline.RandomHorizontalFlip{},
			&pipeline.ToTensor{},
			&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
		)
	default:
		panic(fmt.Sprintf("workloads: unknown kind %q", s.Kind))
	}
	c.Hooks = hooks
	return c
}

// MappingCompose returns the transform chain extended with a batch-sized
// collation op, which is what the LotusMap preparatory step profiles (the
// running pipeline's Collate is batch-level work and needs a mapping too).
func (s Spec) MappingCompose() *pipeline.Compose {
	c := s.Compose(nil)
	c.Transforms = append(c.Transforms, &pipeline.CollateN{N: minInt(s.BatchSize, 16)})
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Dataset builds the spec's dataset and wraps it with the transform chain.
func (s Spec) Dataset(hooks *pipeline.Hooks) pipeline.Dataset {
	switch s.Kind {
	case IC, ICA:
		return pipeline.NewImageFolder(data.NewImageDataset(data.ImageNetConfig(s.NumSamples, s.Seed)), s.Compose(hooks))
	case IS:
		return pipeline.NewVolumeFolder(data.NewVolumeDataset(data.Kits19Config(s.NumSamples, s.Seed)), s.Compose(hooks))
	case OD:
		return pipeline.NewImageFolder(data.NewImageDataset(data.COCOConfig(s.NumSamples, s.Seed)), s.Compose(hooks))
	}
	panic(fmt.Sprintf("workloads: unknown kind %q", s.Kind))
}

// Prototype returns a representative sample for LotusMap isolation runs,
// sized near the dataset mean.
func (s Spec) Prototype() pipeline.Sample {
	ds := s.Dataset(nil)
	switch f := ds.(type) {
	case *pipeline.ImageFolder:
		rec := f.Data.Record(0)
		return pipeline.Sample{
			Index: 0, FileBytes: rec.FileBytes, Seed: rec.Seed,
			Width: rec.Width, Height: rec.Height, Channels: 3,
		}
	case *pipeline.VolumeFolder:
		rec := f.Data.Record(0)
		return pipeline.Sample{
			Index: 0, FileBytes: rec.FileBytes, Seed: rec.Seed,
			Depth: rec.D, Height: rec.H, Width: rec.W, Channels: 1,
		}
	}
	panic("workloads: unknown dataset type")
}

// Run executes one simulated training epoch and returns the statistics, the
// engine used (for hardware profiling), and the virtual clock.
func (s Spec) Run(hooks *pipeline.Hooks) (gpusim.EpochStats, *native.Engine, *clock.Sim) {
	engine := native.NewEngine(s.Arch, native.DefaultCPU())
	return s.RunWithEngine(hooks, engine)
}

// RunEpochs executes a multi-epoch training job on one virtual clock. Each
// epoch gets a fresh DataLoader (as PyTorch re-creates the iterator per
// epoch), reshuffled with an epoch-derived seed, and batch IDs offset by
// epoch so the combined trace stays unambiguous.
func (s Spec) RunEpochs(hooks *pipeline.Hooks, epochs int) ([]gpusim.EpochStats, *native.Engine, *clock.Sim) {
	if epochs <= 0 {
		panic("workloads: RunEpochs needs epochs >= 1")
	}
	engine := native.NewEngine(s.Arch, native.DefaultCPU())
	if hooks != nil && s.PerLogCost > 0 {
		hooks.PerLogCost = s.PerLogCost
	}
	sim := clock.NewSim()
	stats := make([]gpusim.EpochStats, 0, epochs)
	sim.Run("trainer", func(p clock.Proc) {
		offset := 0
		for e := 0; e < epochs; e++ {
			ds := s.Dataset(hooks)
			cfg := pipeline.Config{
				BatchSize:      s.BatchSize,
				NumWorkers:     s.NumWorkers,
				PrefetchFactor: s.Prefetch,
				Shuffle:        s.Shuffle,
				PinMemory:      s.PinMemory,
				Seed:           s.Seed,
				Epoch:          e,
				BatchIDOffset:  offset,
				Hooks:          hooks,
				Mode:           pipeline.Simulated,
				Engine:         engine,
				WorkScale:      s.WorkScale,
				Dispatch:       s.Dispatch,
			}
			if s.SizeAware {
				cfg.CostHint = costHintFor(ds)
			}
			dl := pipeline.NewDataLoader(sim, ds, cfg)
			offset += dl.NumBatches()
			trainer := &gpusim.Trainer{Loader: dl, GPUs: s.GPUs, GPU: s.GPU}
			stats = append(stats, trainer.RunEpoch(p))
		}
	})
	return stats, engine, sim
}

// RunWithEngine is Run with a caller-provided engine (so a hardware
// profiling session can be attached beforehand).
func (s Spec) RunWithEngine(hooks *pipeline.Hooks, engine *native.Engine) (gpusim.EpochStats, *native.Engine, *clock.Sim) {
	if hooks != nil && s.PerLogCost > 0 {
		hooks.PerLogCost = s.PerLogCost
	}
	sim := clock.NewSim()
	ds := s.Dataset(hooks)
	cfg := pipeline.Config{
		BatchSize:      s.BatchSize,
		NumWorkers:     s.NumWorkers,
		PrefetchFactor: s.Prefetch,
		Shuffle:        s.Shuffle,
		PinMemory:      s.PinMemory,
		Seed:           s.Seed,
		Hooks:          hooks,
		Mode:           pipeline.Simulated,
		Engine:         engine,
		WorkScale:      s.WorkScale,
		Dispatch:       s.Dispatch,
	}
	if s.SizeAware {
		cfg.CostHint = costHintFor(ds)
	}
	dl := pipeline.NewDataLoader(sim, ds, cfg)
	trainer := &gpusim.Trainer{Loader: dl, GPUs: s.GPUs, GPU: s.GPU}
	var stats gpusim.EpochStats
	sim.Run("main", func(p clock.Proc) {
		stats = trainer.RunEpoch(p)
	})
	return stats, engine, sim
}

// costHintFor derives a per-sample cost estimate from the dataset's record
// sizes (encoded bytes for images, raw bytes for volumes) — the information
// a SpeedyLoader-style balancer would use.
func costHintFor(ds pipeline.Dataset) func(index int) float64 {
	switch f := ds.(type) {
	case *pipeline.ImageFolder:
		return func(i int) float64 { return float64(f.Data.Record(i).FileBytes) }
	case *pipeline.VolumeFolder:
		return func(i int) float64 { return float64(f.Data.Record(i).RawBytes()) }
	}
	return nil
}
