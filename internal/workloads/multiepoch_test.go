package workloads

import (
	"bytes"
	"testing"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/data"
)

func TestRunEpochsProducesDistinctBatchIDs(t *testing.T) {
	spec := ICSpec(96, 9)
	spec.BatchSize, spec.NumWorkers = 16, 2

	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	stats, _, _ := spec.RunEpochs(tr.Hooks(), 3)
	tr.Flush()

	if len(stats) != 3 {
		t.Fatalf("got %d epoch stats", len(stats))
	}
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := trace.Analyze(recs)
	// 96/16 = 6 batches per epoch x 3 epochs, IDs 0..17 without collision.
	bs := a.Batches()
	if len(bs) != 18 {
		t.Fatalf("trace shows %d batches, want 18", len(bs))
	}
	for i, b := range bs {
		if b.ID != i {
			t.Fatalf("batch IDs collide or skip: got %d at position %d", b.ID, i)
		}
		if b.PreDur <= 0 {
			t.Fatalf("batch %d missing preprocessing span", b.ID)
		}
	}
	// The combined multi-epoch log still satisfies every trace invariant.
	if issues := trace.Validate(recs); len(issues) != 0 {
		t.Fatalf("multi-epoch trace invalid: %v", issues)
	}
}

func TestRunEpochsReshufflesPerEpoch(t *testing.T) {
	spec := ICSpec(64, 3)
	spec.BatchSize, spec.NumWorkers = 8, 1
	spec.Shuffle = true

	// Capture each epoch's first-batch sample order via op records.
	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	spec.RunEpochs(tr.Hooks(), 2)
	tr.Flush()
	recs, _ := trace.ReadLog(&buf)

	perEpochOrder := map[int][]int{} // epoch (batchID/8) -> sample order
	for _, r := range recs {
		if r.Kind == trace.KindOp && r.Op == "Loader" {
			epoch := r.BatchID / 8
			perEpochOrder[epoch] = append(perEpochOrder[epoch], r.SampleIndex)
		}
	}
	if len(perEpochOrder[0]) != 64 || len(perEpochOrder[1]) != 64 {
		t.Fatalf("per-epoch op counts: %d / %d", len(perEpochOrder[0]), len(perEpochOrder[1]))
	}
	same := true
	for i := range perEpochOrder[0] {
		if perEpochOrder[0][i] != perEpochOrder[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs used identical shuffles; PyTorch reshuffles per epoch")
	}
}

func TestRunEpochsTimeAccumulates(t *testing.T) {
	spec := ICSpec(64, 4)
	spec.BatchSize, spec.NumWorkers = 16, 2
	_, _, sim1 := spec.RunEpochs(nil, 1)
	_, _, sim3 := spec.RunEpochs(nil, 3)
	if sim3.Elapsed() < 2*sim1.Elapsed() {
		t.Fatalf("3 epochs (%v) should take ~3x one epoch (%v)", sim3.Elapsed(), sim1.Elapsed())
	}
}

func TestRunEpochsRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ICSpec(8, 1).RunEpochs(nil, 0)
}

func TestPageCacheSpeedsUpSecondEpoch(t *testing.T) {
	// With a page cache large enough for the working set, the second epoch
	// stops paying the remote-storage cost — the epoch-2 speedup the caching
	// literature the paper surveys is built on.
	spec := ICSpec(128, 11)
	spec.BatchSize, spec.NumWorkers = 16, 2
	spec.Cache = data.NewPageCache(1 << 30)

	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	spec.RunEpochs(tr.Hooks(), 2)
	tr.Flush()
	recs, _ := trace.ReadLog(&buf)

	// Split Loader op times by epoch (8 batches per epoch).
	var e1, e2 time.Duration
	var n1, n2 int
	for _, r := range recs {
		if r.Kind != trace.KindOp || r.Op != "Loader" {
			continue
		}
		if r.BatchID < 8 {
			e1 += r.Dur
			n1++
		} else {
			e2 += r.Dur
			n2++
		}
	}
	if n1 != 128 || n2 != 128 {
		t.Fatalf("loader counts %d / %d", n1, n2)
	}
	if e2 >= e1 {
		t.Fatalf("epoch 2 Loader time %v should beat epoch 1 %v (cache hits)", e2, e1)
	}
	if rate := spec.Cache.HitRate(); rate < 0.45 {
		t.Fatalf("hit rate %.2f — second epoch should hit for every sample", rate)
	}
}

func TestPageCacheTooSmallGivesNoSpeedup(t *testing.T) {
	spec := ICSpec(64, 12)
	spec.BatchSize, spec.NumWorkers = 16, 1
	spec.Cache = data.NewPageCache(32 << 10) // smaller than most files
	spec.RunEpochs(nil, 2)
	if rate := spec.Cache.HitRate(); rate > 0.2 {
		t.Fatalf("tiny cache hit rate %.2f — should be near zero", rate)
	}
}
