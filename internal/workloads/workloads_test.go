package workloads

import (
	"bytes"
	"testing"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/native"
)

// runTraced runs a small epoch of the spec with LotusTrace attached and
// returns the analysis.
func runTraced(t *testing.T, s Spec) *trace.Analysis {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	s.Run(tr.Hooks())
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return trace.Analyze(recs)
}

func TestICOpCostOrderingMatchesTableII(t *testing.T) {
	s := ICSpec(256, 1)
	a := runTraced(t, s)
	st := a.OpStats()
	loader, rrc := st["Loader"].Mean, st["RandomResizedCrop"].Mean
	rhf, tt, norm := st["RandomHorizontalFlip"].Mean, st["ToTensor"].Mean, st["Normalize"].Mean
	// Table II (IC): Loader 4.76 > RRC 1.11 > TT 0.34 > Normalize 0.21 > RHF 0.06 (ms).
	if !(loader > rrc && rrc > tt && tt > norm && norm > rhf) {
		t.Fatalf("IC op ordering wrong: Loader=%v RRC=%v TT=%v Norm=%v RHF=%v", loader, rrc, tt, norm, rhf)
	}
	// Magnitudes in the paper's regime (very loose bands — the shape is the
	// claim, not the absolute value).
	if loader < 2*time.Millisecond || loader > 15*time.Millisecond {
		t.Fatalf("IC Loader mean %v outside Table II regime (~4.76ms)", loader)
	}
	if rhf > 300*time.Microsecond {
		t.Fatalf("RHF mean %v — Table II has 0.06ms", rhf)
	}
	// The paper's headline: everything except collation is sub-10ms for
	// most images, and RHF is sub-100µs for most images.
	if st["Loader"].Under10ms < 0.8 {
		t.Fatalf("Loader <10ms fraction %.2f, paper reports 97.79%%", st["Loader"].Under10ms)
	}
	if st["RandomHorizontalFlip"].Under100us < 0.5 {
		t.Fatalf("RHF <100µs fraction %.2f, paper reports 98.3%%", st["RandomHorizontalFlip"].Under100us)
	}
}

func TestISOpCostShape(t *testing.T) {
	s := ISSpec(80, 2)
	a := runTraced(t, s)
	st := a.OpStats()
	// Table II (IS): RBC (91ms) and Loader (72ms) dominate; GN 6.46;
	// RF 4.39; Cast 2.16; RBA 0.78 (ms).
	if st["Loader"].Mean < 20*time.Millisecond {
		t.Fatalf("IS Loader mean %v — should be tens of ms", st["Loader"].Mean)
	}
	// Heavy tail on the foreground-crop rejection loop (paper: P90 299ms vs
	// mean 91ms, a 3.3x ratio).
	if st["RandBalancedCrop"].P90 < 2*st["RandBalancedCrop"].Mean {
		t.Fatalf("RBC P90 %v vs mean %v — expected a heavy tail",
			st["RandBalancedCrop"].P90, st["RandBalancedCrop"].Mean)
	}
	if st["Loader"].Mean < st["GaussianNoise"].Mean {
		t.Fatalf("IS ordering wrong: Loader=%v < GN=%v", st["Loader"].Mean, st["GaussianNoise"].Mean)
	}
	// GaussianNoise fires rarely (p=0.1) but is expensive when it does: the
	// total must be non-zero and the skipped case must dominate the
	// distribution (paper: 88.69% of applications < 100µs).
	if st["GaussianNoise"].Total == 0 {
		t.Fatal("GaussianNoise never fired over 80 samples")
	}
	if st["GaussianNoise"].Under100us < 0.7 {
		t.Fatalf("GN <100µs fraction %.2f (paper 88.69%%)", st["GaussianNoise"].Under100us)
	}
	if st["Cast"].Mean < 500*time.Microsecond || st["Cast"].Mean > 10*time.Millisecond {
		t.Fatalf("Cast mean %v outside regime (~2.16ms)", st["Cast"].Mean)
	}
	if st["RandomBrightnessAugmentation"].Under100us < 0.5 {
		t.Fatalf("RBA <100µs fraction %.2f — the branch-skipped case dominates (paper 88.69%%)",
			st["RandomBrightnessAugmentation"].Under100us)
	}
}

func TestODOpCostShape(t *testing.T) {
	s := ODSpec(64, 3)
	a := runTraced(t, s)
	st := a.OpStats()
	// Table II (OD): Loader 9.59, Resize 9.43, TT 6.75, Normalize 7.8 — all
	// the same order of magnitude; RHF 0.52 far below.
	loader, resize := st["Loader"].Mean, st["Resize"].Mean
	if loader < 3*time.Millisecond || loader > 40*time.Millisecond {
		t.Fatalf("OD Loader mean %v outside regime (~9.6ms)", loader)
	}
	ratio := float64(loader) / float64(resize)
	if ratio < 0.3 || ratio > 4 {
		t.Fatalf("OD Loader (%v) and Resize (%v) should be comparable", loader, resize)
	}
	if st["RandomHorizontalFlip"].Mean > st["ToTensor"].Mean {
		t.Fatal("OD RHF should be far below ToTensor")
	}
}

func TestICIsPreprocessingBoundISAndODAreGPUBound(t *testing.T) {
	icStats, _, _ := ICSpec(256, 1).Run(nil)
	if icStats.GPUUtilization() > 0.6 {
		t.Fatalf("IC GPU utilization %.2f — IC must be preprocessing-bound", icStats.GPUUtilization())
	}
	isStats, _, _ := ISSpec(24, 1).Run(nil)
	if isStats.GPUUtilization() < 0.85 {
		t.Fatalf("IS GPU utilization %.2f — IS must be GPU-bound", isStats.GPUUtilization())
	}
	odStats, _, _ := ODSpec(64, 1).Run(nil)
	if odStats.GPUUtilization() < 0.85 {
		t.Fatalf("OD GPU utilization %.2f — OD must be GPU-bound", odStats.GPUUtilization())
	}
}

func TestGPUBoundPipelinesShowLargeDelays(t *testing.T) {
	// Figure 2: IS delays ~10.9s >> GPU batch time 750ms; OD delays ~1.64s
	// >> 250ms. The invariant: delays well above one GPU batch time.
	is := runTraced(t, ISSpec(24, 4))
	if is.MaxDelay() < 2*time.Second {
		t.Fatalf("IS max delay %v — should be seconds (paper: 10.9s)", is.MaxDelay())
	}
	ic := runTraced(t, ICSpec(256, 4))
	if ic.MaxDelay() > is.MaxDelay() {
		t.Fatalf("IC delay (%v) should be far below IS (%v)", ic.MaxDelay(), is.MaxDelay())
	}
}

func TestPerBatchVarianceRegime(t *testing.T) {
	// Figure 4: IC per-batch preprocessing stddev is 5.48–10.73% of the
	// mean. Band check with margin.
	s := ICSpec(1280, 5)
	s.NumWorkers, s.GPUs = 4, 4
	a := runTraced(t, s)
	st := trace.ComputeDistStats(a.PreprocessTimes())
	if st.StdOfMean < 0.02 || st.StdOfMean > 0.25 {
		t.Fatalf("IC per-batch stddev/mean = %.3f, paper band 0.055-0.107", st.StdOfMean)
	}
}

func TestSpecPrototypeMatchesKind(t *testing.T) {
	p := ICSpec(10, 1).Prototype()
	if p.Width <= 0 || p.Depth != 0 {
		t.Fatalf("IC prototype %+v", p)
	}
	v := ISSpec(10, 1).Prototype()
	if v.Depth <= 0 {
		t.Fatalf("IS prototype %+v", v)
	}
}

func TestOpOrderCoversLoggedOps(t *testing.T) {
	for _, s := range []Spec{ICSpec(8, 1), ODSpec(8, 1)} {
		a := runTraced(t, s)
		logged := a.OpStats()
		order := s.OpOrder()
		inOrder := map[string]bool{}
		for _, op := range order {
			inOrder[op] = true
		}
		for op := range logged {
			if !inOrder[op] {
				t.Fatalf("%s: logged op %q missing from OpOrder", s.Kind, op)
			}
		}
	}
}

func TestRunWithEngineUsesProvidedEngine(t *testing.T) {
	engine := native.NewEngine(native.AMD, native.DefaultCPU())
	_, used, _ := ICSpec(16, 1).RunWithEngine(nil, engine)
	if used != engine {
		t.Fatal("RunWithEngine must use the caller's engine")
	}
}
