package workloads

import (
	"testing"
	"time"

	"lotus/internal/pipeline"
)

// TestOfflineDecodeRemovesBottleneck reproduces Takeaway 2: decoding the
// dataset offline (as MLPerf's IS/OD do) removes the preprocessing
// bottleneck — GPU utilization rises and the epoch shortens.
func TestOfflineDecodeRemovesBottleneck(t *testing.T) {
	online := ICSpec(512, 1)
	onStats, _, _ := online.Run(nil)

	offline := ICSpec(512, 1)
	offline.OfflineDecode = true
	offStats, _, _ := offline.Run(nil)

	if offStats.Elapsed >= onStats.Elapsed {
		t.Fatalf("offline decode should shorten the epoch: %v vs %v", offStats.Elapsed, onStats.Elapsed)
	}
	if offStats.GPUUtilization() <= onStats.GPUUtilization() {
		t.Fatalf("offline decode should raise GPU utilization: %.2f vs %.2f",
			offStats.GPUUtilization(), onStats.GPUUtilization())
	}
}

// TestOfflineDecodeDropsDecodeOps verifies the online pipeline no longer
// performs the libjpeg work.
func TestOfflineDecodeDropsDecodeOps(t *testing.T) {
	spec := ICSpec(64, 2)
	spec.OfflineDecode = true
	gt := spec.Compose(nil).GroundTruth()
	for _, k := range gt["Loader"] {
		if k == "decode_mcu" || k == "jpeg_idct_islow" {
			t.Fatalf("offline loader still declares decode kernel %s", k)
		}
	}
	a := runTraced(t, spec)
	st := a.OpStats()
	if st["Loader"].Count != 64 {
		t.Fatalf("Loader logged %d times", st["Loader"].Count)
	}
	// Offline loads are memcpy + I/O of raw bytes: cheaper CPU than decode,
	// though more I/O.
	onA := runTraced(t, ICSpec(64, 2))
	if st["Loader"].Mean >= onA.OpStats()["Loader"].Mean {
		t.Fatalf("offline Loader (%v) should be cheaper than online (%v)",
			st["Loader"].Mean, onA.OpStats()["Loader"].Mean)
	}
}

// TestLeastWorkDispatchReducesInversions compares the PyTorch producer
// policy against the size-aware least-outstanding-work policy (Takeaway 4's
// scheduling direction). Balanced outstanding work should reduce
// out-of-order pressure: fewer or equal OOO arrivals and no worse tail
// delay.
func TestLeastWorkDispatchReducesInversions(t *testing.T) {
	run := func(dispatch pipeline.DispatchPolicy, sizeAware bool) (ooo int, maxDelay time.Duration) {
		spec := ICSpec(64*40, 7)
		spec.BatchSize, spec.GPUs, spec.NumWorkers = 64, 4, 4
		spec.Dispatch = dispatch
		spec.SizeAware = sizeAware
		a := runTraced(t, spec)
		return len(a.OutOfOrderBatches()), a.MaxDelay()
	}
	defOOO, defMax := run(pipeline.DispatchProducer, false)
	lwOOO, lwMax := run(pipeline.DispatchLeastWork, true)
	t.Logf("producer policy: ooo=%d maxDelay=%v; least-work: ooo=%d maxDelay=%v",
		defOOO, defMax, lwOOO, lwMax)
	if defOOO == 0 {
		t.Skip("baseline produced no OOO events; nothing to compare")
	}
	if lwOOO > defOOO+defOOO/4 {
		t.Fatalf("least-work dispatch increased OOO events: %d vs %d", lwOOO, defOOO)
	}
}

// TestDispatchPoliciesDeliverIdenticalData ensures scheduling only reorders
// completion, never changes what is delivered.
func TestDispatchPoliciesDeliverIdenticalData(t *testing.T) {
	collect := func(dispatch pipeline.DispatchPolicy) [][]int {
		spec := ICSpec(100, 3)
		spec.BatchSize, spec.NumWorkers = 10, 3
		spec.Dispatch = dispatch
		spec.SizeAware = dispatch == pipeline.DispatchLeastWork
		var out [][]int
		hooks := &pipeline.Hooks{}
		_ = hooks
		// Use the analysis-free path: run and read back batch indices via
		// a collector on consumed order.
		a := runTraced(t, spec)
		for _, b := range a.Batches() {
			out = append(out, []int{b.ID})
		}
		return out
	}
	a := collect(pipeline.DispatchProducer)
	b := collect(pipeline.DispatchLeastWork)
	if len(a) != len(b) {
		t.Fatalf("batch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("batch order differs at %d — consumption must stay in-order under any policy", i)
		}
	}
}
