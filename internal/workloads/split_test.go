package workloads

import (
	"math"
	"testing"

	"lotus/internal/clock"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

// TestSplitPointsPerWorkload pins each pipeline's deterministic prefix: the
// sample cache's hit surface. A transform reordering that shrinks a prefix
// silently would gut the cache, so the splits are asserted explicitly.
func TestSplitPointsPerWorkload(t *testing.T) {
	want := map[Kind]int{IC: 1, ICA: 2, IS: 1, OD: 2}
	for kind, split := range want {
		spec := specFor(kind, 16, 7)
		if got := spec.Compose(nil).SplitPoint(); got != split {
			t.Errorf("%s: split point %d, want %d", kind, got, split)
		}
	}
}

// TestSplitOverride: an explicit override may shorten the prefix but must
// panic when it extends past the deterministic run.
func TestSplitOverride(t *testing.T) {
	c := ICASpec(16, 7).Compose(nil)
	c.SplitOverride = 1
	if got := c.SplitPoint(); got != 1 {
		t.Fatalf("override 1: split %d", got)
	}
	c.SplitOverride = -1
	if got := c.SplitPoint(); got != 0 {
		t.Fatalf("override -1: split %d", got)
	}
	c.SplitOverride = 3
	defer func() {
		if recover() == nil {
			t.Fatal("SplitOverride past the deterministic prefix did not panic")
		}
	}()
	c.SplitPoint()
}

func specFor(kind Kind, samples int, seed int64) Spec {
	switch kind {
	case IC:
		return ICSpec(samples, seed)
	case ICA:
		return ICASpec(samples, seed)
	case IS:
		return ISSpec(samples, seed)
	case OD:
		return ODSpec(samples, seed)
	}
	panic(kind)
}

// applySplit runs one prototype sample through the spec's chain, either
// unsplit (caching disabled) or as prefix then suffix, and returns the
// resulting sample plus the virtual time the run consumed.
func applySplit(spec Spec, mode pipeline.Mode, split bool, epoch int) (pipeline.Sample, int64) {
	engine := native.NewEngine(spec.Arch, native.DefaultCPU())
	proto := spec.Prototype()
	var out pipeline.Sample
	var elapsed int64
	sim := clock.NewSim()
	sim.Run("main", func(p clock.Proc) {
		ctx := &pipeline.Ctx{Proc: p, Engine: engine, Thread: &native.Thread{ID: 1},
			Mode: mode, Seed: spec.Seed, Epoch: epoch, MaterializeDim: 48}
		c := spec.Compose(nil)
		s := proto
		if split {
			s = c.ApplyPrefix(ctx, 1, 0, s)
			s = c.ApplySuffix(ctx, 1, 0, s)
		} else {
			c.SplitOverride = -1
			s = c.Apply(ctx, 1, 0, s)
		}
		out = s
		elapsed = p.Now().Sub(clock.Epoch).Nanoseconds()
	})
	return out, elapsed
}

// payloadBytes flattens whichever real payload the sample carries.
func payloadBytes(s pipeline.Sample) []byte {
	switch {
	case s.Tensor != nil && s.Tensor.F32 != nil:
		return f32Bytes(s.Tensor.F32)
	case s.Tensor != nil && s.Tensor.U8 != nil:
		return append([]byte(nil), s.Tensor.U8...)
	case s.Image != nil:
		return append([]byte(nil), s.Image.Pix...)
	case s.Volume != nil:
		return f32Bytes(s.Volume.Vox)
	}
	return nil
}

// f32Bytes encodes float32s exactly (bit pattern), so comparisons are true
// byte identity rather than a lossy projection.
func f32Bytes(fs []float32) []byte {
	out := make([]byte, 0, len(fs)*4)
	for _, f := range fs {
		u := math.Float32bits(f)
		out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return out
}

// TestSplitApplyByteIdenticalToUnsplit is the split refactor's core property:
// for every workload spec, running the chain as prefix followed by suffix must
// be indistinguishable from running it unsplit — identical sample metadata and
// virtual time in simulated mode, identical payload bytes in real mode.
func TestSplitApplyByteIdenticalToUnsplit(t *testing.T) {
	for _, kind := range []Kind{IC, ICA, IS, OD} {
		for _, epoch := range []int{0, 2} {
			spec := specFor(kind, 16, 7)

			whole, tWhole := applySplit(spec, pipeline.Simulated, false, epoch)
			parts, tParts := applySplit(spec, pipeline.Simulated, true, epoch)
			if whole.Width != parts.Width || whole.Height != parts.Height ||
				whole.Depth != parts.Depth || whole.Channels != parts.Channels ||
				whole.Dtype != parts.Dtype || whole.RawBytes() != parts.RawBytes() {
				t.Errorf("%s epoch %d sim: split metadata diverges: %+v vs %+v", kind, epoch, whole, parts)
			}
			if tWhole != tParts {
				t.Errorf("%s epoch %d sim: split run consumed %dns, unsplit %dns", kind, epoch, tParts, tWhole)
			}

			wholeR, _ := applySplit(spec, pipeline.RealData, false, epoch)
			partsR, _ := applySplit(spec, pipeline.RealData, true, epoch)
			a, b := payloadBytes(wholeR), payloadBytes(partsR)
			if len(a) == 0 {
				t.Errorf("%s epoch %d real: no payload produced", kind, epoch)
				continue
			}
			if len(a) != len(b) {
				t.Errorf("%s epoch %d real: payload sizes diverge: %d vs %d", kind, epoch, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%s epoch %d real: split payload diverges at byte %d", kind, epoch, i)
					break
				}
			}
		}
	}
}

// TestCachedLoaderByteIdenticalAllWorkloads runs every workload's DataLoader
// in real mode with and without a shared sample cache across two epochs: the
// collated batches must be byte-identical, proving cached prefixes never leak
// stale or aliased pixels into any pipeline shape (image and volume alike).
func TestCachedLoaderByteIdenticalAllWorkloads(t *testing.T) {
	for _, kind := range []Kind{IC, ICA, IS, OD} {
		spec := specFor(kind, 8, 7)
		spec.BatchSize = 2
		if kind == IS {
			// Real-mode IS volumes crop to per-volume clamped patches, so
			// cross-sample collation would mismatch; batch of one keeps the
			// loader (and the cache's volume path) exercised regardless.
			spec.BatchSize = 1
		}
		spec.NumWorkers = 2
		cache := pipeline.NewSampleCache(256<<20, false) // sim clock: non-blocking
		fp := uint64(0xF00D) + uint64(len(kind))

		run := func(epoch int, cached bool) map[int][]byte {
			cfg := pipeline.Config{
				BatchSize: spec.BatchSize, NumWorkers: spec.NumWorkers,
				Shuffle: spec.Shuffle, Seed: spec.Seed, Epoch: epoch,
				Mode: pipeline.RealData, MaterializeDim: 32,
			}
			if cached {
				cfg.SampleCache = cache
				cfg.PrefixFP = fp
			}
			out := make(map[int][]byte)
			sim := clock.NewSim()
			sim.Run("main", func(p clock.Proc) {
				dl := pipeline.NewDataLoader(sim, spec.Dataset(nil), cfg)
				it := dl.Start(p)
				for {
					b, ok := it.Next(p)
					if !ok {
						if err := it.Err(); err != nil {
							t.Errorf("%s epoch %d cached=%v: %v", kind, epoch, cached, err)
						}
						return
					}
					payload := b.Data.U8
					if b.Data.F32 != nil {
						payload = f32Bytes(b.Data.F32)
					}
					if len(payload) == 0 {
						t.Errorf("%s epoch %d batch %d: real-mode batch carries no payload", kind, epoch, b.ID)
					}
					out[b.ID] = append([]byte(nil), payload...)
				}
			})
			return out
		}

		for _, epoch := range []int{0, 1} {
			want := run(epoch, false)
			got := run(epoch, true)
			if len(want) != len(got) || len(want) == 0 {
				t.Fatalf("%s epoch %d: batch counts diverge: %d vs %d", kind, epoch, len(want), len(got))
			}
			for id, w := range want {
				g := got[id]
				if len(g) != len(w) {
					t.Fatalf("%s epoch %d batch %d: payload lengths diverge", kind, epoch, id)
				}
				for i := range w {
					if g[i] != w[i] {
						t.Fatalf("%s epoch %d batch %d: cached output diverges at element %d", kind, epoch, id, i)
					}
				}
			}
		}
		st := cache.Stats()
		if st.Misses == 0 {
			t.Errorf("%s: cache never exercised (misses 0): %+v", kind, st)
		}
		if st.Hits == 0 {
			t.Errorf("%s: second epoch never hit the cache: %+v", kind, st)
		}
	}
}
