// Package gpusim models the accelerator side of the training job: GPU
// devices consuming preprocessed batches under torch.nn.DataParallel. The
// model captures what the paper's wait/delay dynamics depend on — the main
// process cannot consume the next batch until the previous iteration's
// backward pass has synchronized — without simulating the model itself.
package gpusim

import (
	"time"

	"lotus/internal/clock"
	"lotus/internal/pipeline"
)

// GPUConfig describes per-batch device time.
type GPUConfig struct {
	// PerSample is forward+backward compute time per sample on one device.
	PerSample time.Duration
	// PerBatch is the fixed per-iteration overhead (kernel launches,
	// gradient all-reduce).
	PerBatch time.Duration
}

// BatchTime returns the device-side time for n samples split over g GPUs
// (DataParallel splits the batch; devices run in parallel).
func (c GPUConfig) BatchTime(n, g int) time.Duration {
	if g <= 0 {
		g = 1
	}
	per := (n + g - 1) / g
	return c.PerBatch + time.Duration(per)*c.PerSample
}

// Trainer drives one training epoch: consume batches in order, transfer to
// devices, run the model, synchronize.
type Trainer struct {
	Loader *pipeline.DataLoader
	GPUs   int
	GPU    GPUConfig
	// TransferGBps is host-to-device copy bandwidth (NVLink-ish default 10).
	TransferGBps float64
}

// EpochStats summarizes one trained epoch.
type EpochStats struct {
	Batches      int
	Elapsed      time.Duration
	GPUBusy      time.Duration
	GPUIdle      time.Duration
	MainWaitTime time.Duration
	OOOEvents    int
}

// GPUUtilization is busy / (busy + idle).
func (s EpochStats) GPUUtilization() float64 {
	total := s.GPUBusy + s.GPUIdle
	if total == 0 {
		return 0
	}
	return float64(s.GPUBusy) / float64(total)
}

// RunEpoch runs one epoch under the proc p (which must be the main proc of
// the loader's clock). The loop mirrors the paper's Figure 1 flow: the main
// process waits for the next preprocessed batch, transfers it, schedules the
// device work, and blocks on the previous iteration's synchronization before
// consuming another batch.
func (t *Trainer) RunEpoch(p clock.Proc) EpochStats {
	gbps := t.TransferGBps
	if gbps <= 0 {
		gbps = 10
	}
	gpus := t.GPUs
	if gpus <= 0 {
		gpus = 1
	}

	stats := EpochStats{}
	start := p.Now()
	gpuFreeAt := start
	it := t.Loader.Start(p)
	for {
		// Backward-pass synchronization: the next iteration cannot start
		// until the devices finish the previous one.
		if now := p.Now(); gpuFreeAt.After(now) {
			p.Sleep(gpuFreeAt.Sub(now))
		}
		waitStart := p.Now()
		batch, ok := it.Next(p)
		if !ok {
			break
		}
		stats.MainWaitTime += p.Now().Sub(waitStart)
		stats.Batches++

		// Host-to-device transfer (the main process is busy during it).
		if bytes := batch.Bytes(); bytes > 0 {
			p.Sleep(time.Duration(float64(bytes) / (gbps * 1e9) * float64(time.Second)))
		}

		// Asynchronously scheduled device work.
		now := p.Now()
		if now.After(gpuFreeAt) {
			stats.GPUIdle += now.Sub(gpuFreeAt)
			gpuFreeAt = now
		}
		stats.GPUBusy += t.GPU.BatchTime(batch.Size(), gpus)
		gpuFreeAt = gpuFreeAt.Add(t.GPU.BatchTime(batch.Size(), gpus))
	}
	// Epoch ends when the last batch finishes on the devices.
	if now := p.Now(); gpuFreeAt.After(now) {
		p.Sleep(gpuFreeAt.Sub(now))
	}
	stats.Elapsed = p.Now().Sub(start)
	stats.OOOEvents = it.OOOEvents
	return stats
}
