package gpusim

import (
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

func icLoader(sim *clock.Sim, n, batch, workers int, hooks *pipeline.Hooks) *pipeline.DataLoader {
	ds := data.NewImageDataset(data.ImageNetConfig(n, 1))
	c := pipeline.NewCompose(
		&pipeline.Loader{IO: data.DefaultIO()},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	c.Hooks = hooks
	return pipeline.NewDataLoader(sim, pipeline.NewImageFolder(ds, c), pipeline.Config{
		BatchSize:  batch,
		NumWorkers: workers,
		Seed:       1,
		Hooks:      hooks,
		Mode:       pipeline.Simulated,
		Engine:     native.NewEngine(native.Intel, native.DefaultCPU()),
	})
}

func TestBatchTimeSplitsAcrossGPUs(t *testing.T) {
	cfg := GPUConfig{PerSample: time.Millisecond, PerBatch: 10 * time.Millisecond}
	one := cfg.BatchTime(128, 1)
	four := cfg.BatchTime(128, 4)
	if one != 138*time.Millisecond {
		t.Fatalf("1-GPU time %v", one)
	}
	if four != 42*time.Millisecond {
		t.Fatalf("4-GPU time %v", four)
	}
}

func TestPreprocessingBottleneckLeavesGPUIdle(t *testing.T) {
	sim := clock.NewSim()
	dl := icLoader(sim, 120, 20, 1, nil) // 1 worker: preprocessing-bound
	trainer := &Trainer{Loader: dl, GPUs: 4, GPU: GPUConfig{PerSample: 20 * time.Microsecond, PerBatch: time.Millisecond}}
	var stats EpochStats
	sim.Run("main", func(p clock.Proc) { stats = trainer.RunEpoch(p) })
	if stats.Batches != 6 {
		t.Fatalf("trained %d batches", stats.Batches)
	}
	if stats.GPUUtilization() > 0.5 {
		t.Fatalf("GPU utilization %.2f — should be mostly idle when preprocessing-bound", stats.GPUUtilization())
	}
	if stats.MainWaitTime < stats.Elapsed/4 {
		t.Fatalf("main wait %v of %v — main should spend most time waiting", stats.MainWaitTime, stats.Elapsed)
	}
}

func TestGPUBottleneckKeepsGPUBusy(t *testing.T) {
	sim := clock.NewSim()
	dl := icLoader(sim, 120, 20, 4, nil)
	// Very slow GPU: 40ms per sample.
	trainer := &Trainer{Loader: dl, GPUs: 1, GPU: GPUConfig{PerSample: 40 * time.Millisecond}}
	var stats EpochStats
	sim.Run("main", func(p clock.Proc) { stats = trainer.RunEpoch(p) })
	if stats.GPUUtilization() < 0.9 {
		t.Fatalf("GPU utilization %.2f — should be saturated when GPU-bound", stats.GPUUtilization())
	}
	// Main should hardly wait for preprocessing.
	if stats.MainWaitTime > stats.Elapsed/10 {
		t.Fatalf("main wait %v of %v — preprocessing should keep up", stats.MainWaitTime, stats.Elapsed)
	}
}

func TestMoreWorkersShortenPreprocessingBoundEpoch(t *testing.T) {
	elapsed := func(workers int) time.Duration {
		sim := clock.NewSim()
		dl := icLoader(sim, 200, 25, workers, nil)
		trainer := &Trainer{Loader: dl, GPUs: 4, GPU: GPUConfig{PerSample: 10 * time.Microsecond, PerBatch: time.Millisecond}}
		var stats EpochStats
		sim.Run("main", func(p clock.Proc) { stats = trainer.RunEpoch(p) })
		return stats.Elapsed
	}
	e1, e4 := elapsed(1), elapsed(4)
	if float64(e4) > 0.5*float64(e1) {
		t.Fatalf("4 workers (%v) should cut epoch well below half of 1 worker (%v)", e4, e1)
	}
}

func TestGPUBoundProducesDelayedBatches(t *testing.T) {
	// When the GPU is the bottleneck, preprocessed batches sit in the data
	// queue; delay (consumption - preprocessed) far exceeds the
	// preprocessing-bound case.
	delays := func(perSample time.Duration) (maxDelay time.Duration) {
		var consumed = map[int]struct {
			at time.Time
		}{}
		var pre = map[int]time.Time{}
		hooks := &pipeline.Hooks{
			OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
				pre[batchID] = start.Add(dur)
			},
			OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
				consumed[batchID] = struct{ at time.Time }{start}
			},
		}
		sim := clock.NewSim()
		dl := icLoader(sim, 120, 20, 4, hooks)
		trainer := &Trainer{Loader: dl, GPUs: 1, GPU: GPUConfig{PerSample: perSample}}
		sim.Run("main", func(p clock.Proc) { trainer.RunEpoch(p) })
		for id, c := range consumed {
			if d := c.at.Sub(pre[id]); d > maxDelay {
				maxDelay = d
			}
		}
		return maxDelay
	}
	slowGPU := delays(40 * time.Millisecond)
	fastGPU := delays(10 * time.Microsecond)
	if slowGPU < 4*fastGPU {
		t.Fatalf("GPU-bound max delay %v should dwarf preprocessing-bound %v", slowGPU, fastGPU)
	}
}

func TestEpochStatsAccounting(t *testing.T) {
	sim := clock.NewSim()
	dl := icLoader(sim, 60, 20, 2, nil)
	trainer := &Trainer{Loader: dl, GPUs: 2, GPU: GPUConfig{PerSample: time.Millisecond, PerBatch: 5 * time.Millisecond}}
	var stats EpochStats
	var elapsed time.Duration
	sim.Run("main", func(p clock.Proc) {
		stats = trainer.RunEpoch(p)
		elapsed = p.Now().Sub(clock.Epoch)
	})
	if stats.Batches != 3 {
		t.Fatalf("batches %d", stats.Batches)
	}
	// GPU busy must equal batches x batch time.
	want := 3 * trainer.GPU.BatchTime(20, 2)
	if stats.GPUBusy != want {
		t.Fatalf("GPUBusy %v, want %v", stats.GPUBusy, want)
	}
	// Elapsed covers the last batch's device completion.
	if stats.Elapsed != elapsed {
		t.Fatalf("Elapsed %v vs clock %v", stats.Elapsed, elapsed)
	}
	// Busy + idle partitions device wall time up to the epoch end.
	if stats.GPUBusy+stats.GPUIdle > stats.Elapsed+time.Millisecond {
		t.Fatalf("busy(%v)+idle(%v) exceeds elapsed(%v)", stats.GPUBusy, stats.GPUIdle, stats.Elapsed)
	}
}

func TestGPUUtilizationEdgeCases(t *testing.T) {
	if (EpochStats{}).GPUUtilization() != 0 {
		t.Fatal("zero stats utilization")
	}
	s := EpochStats{GPUBusy: time.Second, GPUIdle: time.Second}
	if u := s.GPUUtilization(); u != 0.5 {
		t.Fatalf("utilization %v", u)
	}
}

func TestBatchTimeDefaultsSingleGPU(t *testing.T) {
	cfg := GPUConfig{PerSample: time.Millisecond}
	if cfg.BatchTime(10, 0) != cfg.BatchTime(10, 1) {
		t.Fatal("g<=0 should behave as one device")
	}
	// Uneven splits round up (the slowest device gates the batch).
	if cfg.BatchTime(10, 3) != 4*time.Millisecond {
		t.Fatalf("BatchTime(10,3) = %v, want 4ms", cfg.BatchTime(10, 3))
	}
}
