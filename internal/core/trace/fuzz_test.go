package trace

import (
	"strings"
	"testing"
)

// FuzzParseRecord: the parser must never panic and must round-trip every
// record it accepts.
func FuzzParseRecord(f *testing.F) {
	f.Add("op,4001,3,17,RandomResizedCrop,1000000,1100")
	f.Add("pre,4002,9,-1,,2000000,40000000")
	f.Add("wait,4000,9,-1,,3000000,1000")
	f.Add("cons,4000,9,-1,,4000000,0")
	f.Add("")
	f.Add("op,,,,,,")
	f.Add("bogus,1,2,3,x,4,5")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		// Accepted records must re-serialize to something that parses to the
		// same value.
		back, err := ParseRecord(rec.format())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", rec.format(), err)
		}
		if back != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", back, rec)
		}
	})
}

// FuzzReadLog: arbitrary byte streams must never panic the log reader.
func FuzzReadLog(f *testing.F) {
	f.Add("# lotustrace v1 workload=IC\nop,1,0,5,Loader,1000,2000\n")
	f.Add("\n\n#\n")
	f.Add("op,1,0,5,Loader,1000")
	f.Fuzz(func(t *testing.T, log string) {
		_, _, _ = ReadLogWithMeta(strings.NewReader(log))
		_, _ = ReadLog(strings.NewReader(log))
	})
}
