package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

func hasIssue(issues []Issue, code string) bool {
	for _, i := range issues {
		if i.Code == code {
			return true
		}
	}
	return false
}

func TestValidateAcceptsRealPipelineLog(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	hooks := tr.Hooks()
	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(60, 5))
	c := pipeline.NewCompose(
		&pipeline.Loader{IO: data.DefaultIO()},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.ToTensor{},
	)
	c.Hooks = hooks
	dl := pipeline.NewDataLoader(sim, pipeline.NewImageFolder(ds, c), pipeline.Config{
		BatchSize: 10, NumWorkers: 3, Seed: 2, Hooks: hooks, PinMemory: true,
		Mode: pipeline.Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	tr.Flush()
	recs, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if issues := Validate(recs); len(issues) != 0 {
		t.Fatalf("real pipeline log failed validation: %v", issues)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := []Record{
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 100 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(100 * time.Millisecond), Dur: 10 * time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(110 * time.Millisecond), Dur: time.Millisecond},
	}
	cases := []struct {
		name   string
		mutate func([]Record) []Record
		code   string
	}{
		{"negative duration", func(r []Record) []Record {
			r[0].Dur = -time.Millisecond
			return r
		}, "negative-duration"},
		{"consumed before ready", func(r []Record) []Record {
			r[2].Start = at(50 * time.Millisecond)
			return r
		}, "consumed-before-ready"},
		{"duplicate records", func(r []Record) []Record {
			return append(r, r[0])
		}, "duplicate-batch-records"},
		{"consumed without preprocessing", func(r []Record) []Record {
			return append(r, Record{Kind: KindBatchConsumed, PID: 4000, BatchID: 7, SampleIndex: -1, Start: at(time.Second)})
		}, "consumed-without-preprocessing"},
		{"two main pids", func(r []Record) []Record {
			return append(r,
				Record{Kind: KindBatchPreprocessed, PID: 4002, BatchID: 1, SampleIndex: -1, Start: at(0), Dur: time.Millisecond},
				Record{Kind: KindBatchWait, PID: 4009, BatchID: 1, SampleIndex: -1, Start: at(time.Second), Dur: time.Millisecond})
		}, "multiple-main-pids"},
		{"worker is main", func(r []Record) []Record {
			r[0].PID = 4000
			return r
		}, "worker-is-main"},
		{"op outside batch", func(r []Record) []Record {
			return append(r, Record{Kind: KindOp, PID: 4001, BatchID: 0, SampleIndex: 1, Op: "Loader",
				Start: at(300 * time.Millisecond), Dur: 50 * time.Millisecond})
		}, "op-outside-batch"},
		{"op without batch", func(r []Record) []Record {
			return append(r, Record{Kind: KindOp, PID: 4001, BatchID: 42, SampleIndex: 1, Op: "Loader",
				Start: at(0), Dur: time.Millisecond})
		}, "op-without-batch"},
	}
	for _, c := range cases {
		recs := c.mutate(append([]Record(nil), base...))
		issues := Validate(recs)
		if !hasIssue(issues, c.code) {
			t.Errorf("%s: expected issue %q, got %v", c.name, c.code, issues)
		}
	}
}

func TestValidateOutOfOrderConsumption(t *testing.T) {
	recs := []Record{
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: time.Millisecond},
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 1, SampleIndex: -1, Start: at(0), Dur: time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 1, SampleIndex: -1, Start: at(time.Second)},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(2 * time.Second)},
	}
	if !hasIssue(Validate(recs), "out-of-order-consumption") {
		t.Fatal("missed out-of-order consumption")
	}
}

func TestValidateCleanLogIsQuiet(t *testing.T) {
	recs := []Record{
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 10 * time.Millisecond},
		{Kind: KindOp, PID: 4001, BatchID: 0, SampleIndex: 0, Op: "Loader", Start: at(time.Millisecond), Dur: 5 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(10 * time.Millisecond), Dur: time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(11 * time.Millisecond)},
	}
	if issues := Validate(recs); len(issues) != 0 {
		t.Fatalf("clean log produced issues: %v", issues)
	}
}

func TestRenderTimeline(t *testing.T) {
	recs := []Record{
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 400 * time.Millisecond},
		{Kind: KindBatchPreprocessed, PID: 4002, BatchID: 1, SampleIndex: -1, Start: at(0), Dur: 700 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 400 * time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(410 * time.Millisecond), Dur: time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 1, SampleIndex: -1, Start: at(720 * time.Millisecond), Dur: time.Millisecond},
	}
	out := RenderTimeline(recs, 60)
	if !strings.Contains(out, "main") || !strings.Contains(out, "worker 4001") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "=") || !strings.Contains(out, "C") || !strings.Contains(out, "W") {
		t.Fatalf("missing span/marker glyphs:\n%s", out)
	}
	// Main row is first.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "main") {
		t.Fatalf("main row should lead:\n%s", out)
	}
	if RenderTimeline(nil, 60) != "(empty trace)\n" {
		t.Fatal("empty trace rendering")
	}
	opOnly := []Record{{Kind: KindOp, PID: 1, BatchID: 0, Op: "X", Start: at(0), Dur: time.Millisecond}}
	if RenderTimeline(opOnly, 60) != "(no batch records)\n" {
		t.Fatal("op-only trace rendering")
	}
}

func TestBuildHTMLReport(t *testing.T) {
	var recs []Record
	for i := 0; i < 6; i++ {
		base := time.Duration(i) * time.Second
		recs = mkBatch(recs, i, i%2, base, 800*time.Millisecond, 700*time.Millisecond, base+900*time.Millisecond)
		recs = append(recs, Record{Kind: KindOp, PID: 4001 + i%2, BatchID: i, SampleIndex: i,
			Op: "Loader", Start: at(base), Dur: 600 * time.Millisecond})
	}
	html, err := BuildHTMLReport(recs, map[string]string{"workload": "IC", "batch": "64"})
	if err != nil {
		t.Fatal(err)
	}
	out := string(html)
	for _, want := range []string{
		"<!DOCTYPE html>", "LotusTrace report",
		"workload=IC", "Loader", "preprocessing-bound", "<svg", "batch 3",
		"Main-process wait times", "Batch delay times",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Self-contained: no external resources.
	for _, banned := range []string{"http://", "https://", "src="} {
		if strings.Contains(out, banned) {
			t.Fatalf("report references external resource (%q)", banned)
		}
	}
}

func TestBuildHTMLReportEmptyTrace(t *testing.T) {
	html, err := BuildHTMLReport(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "empty-trace") {
		t.Fatal("empty trace should surface the empty-trace finding")
	}
}

func TestHistogramBuckets(t *testing.T) {
	ds := []time.Duration{
		500 * time.Microsecond, // <1ms
		5 * time.Millisecond,   // 1-10ms
		50 * time.Millisecond,  // 10-100ms
		200 * time.Millisecond, // 0.1-0.5s
		time.Second,            // 0.5-2s
		10 * time.Second,       // >2s
		10 * time.Second,       // >2s
	}
	h := histogram(ds)
	if len(h) != 6 {
		t.Fatalf("bins %d", len(h))
	}
	want := []int{1, 1, 1, 1, 1, 2}
	for i, b := range h {
		if b.Count != want[i] {
			t.Fatalf("bin %s count %d, want %d", b.Label, b.Count, want[i])
		}
	}
	if h[5].Pct != 100 {
		t.Fatalf("max bin pct %v", h[5].Pct)
	}
}
