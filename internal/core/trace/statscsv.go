package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteOpStatsCSV exports per-operation statistics in the column layout the
// paper's analysis notebooks consume (preprocessing_time_stats.py produces
// the same quantities). Ops appear in the given order; unknown names emit
// zero rows so downstream plots keep consistent columns.
func (a *Analysis) WriteOpStatsCSV(w io.Writer, order []string) error {
	stats := a.OpStats()
	cw := csv.NewWriter(w)
	header := []string{"op", "count", "mean_ms", "std_ms", "p90_ms", "total_ms", "under_10ms_frac", "under_100us_frac"}
	if err := cw.Write(header); err != nil {
		return err
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 4, 64)
	}
	frac := func(f float64) string { return strconv.FormatFloat(f, 'f', 4, 64) }
	for _, op := range order {
		st := stats[op]
		rec := []string{
			op,
			strconv.Itoa(st.Count),
			ms(st.Mean), ms(st.Std), ms(st.P90), ms(st.Total),
			frac(st.Under10ms), frac(st.Under100us),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadOpStatsCSV parses stats written by WriteOpStatsCSV back into OpStats
// keyed by op name (P-quantiles and thresholds only; raw samples are gone).
func ReadOpStatsCSV(r io.Reader) (map[string]OpStat, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: bad op-stats CSV: %w", err)
	}
	if len(records) == 0 || records[0][0] != "op" {
		return nil, fmt.Errorf("trace: missing op-stats header")
	}
	out := map[string]OpStat{}
	for i, rec := range records[1:] {
		if len(rec) != 8 {
			return nil, fmt.Errorf("trace: op-stats row %d has %d fields", i+2, len(rec))
		}
		count, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d count: %w", i+2, err)
		}
		fs := make([]float64, 6)
		for j := range fs {
			fs[j], err = strconv.ParseFloat(rec[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d field %d: %w", i+2, 2+j, err)
			}
		}
		msd := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
		out[rec[0]] = OpStat{
			Op: rec[0], Count: count,
			Mean: msd(fs[0]), Std: msd(fs[1]), P90: msd(fs[2]), Total: msd(fs[3]),
			Under10ms: fs[4], Under100us: fs[5],
		}
	}
	return out, nil
}
