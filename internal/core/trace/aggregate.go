package trace

import (
	"sort"
	"time"

	"lotus/internal/rng"
)

// Aggregator computes the Table II statistics in a single streaming pass
// with bounded memory: exact counts, totals, and threshold fractions, plus
// reservoir-sampled quantiles. A full-ImageNet epoch emits ~8M records
// (299 MB of log, Table III); holding them all to Analyze is fine on a
// workstation but unnecessary when only per-op statistics are wanted.
type Aggregator struct {
	reservoirSize int
	rand          *rng.Stream
	ops           map[string]*opAgg

	batches   int
	cpuTotal  time.Duration
	waitOver  map[time.Duration]int
	delayOver map[time.Duration]int
	// join state for delays: per batch preprocessing end / consumption.
	preEnd map[int]time.Time
	cons   map[int]time.Time
}

type opAgg struct {
	count      int
	total      time.Duration
	max        time.Duration
	under10ms  int
	under100us int
	reservoir  []time.Duration
	seen       int
}

// NewAggregator creates a streaming aggregator. reservoirSize bounds the
// per-op memory used for quantile estimates (1024 gives ~±3% on P90).
func NewAggregator(reservoirSize int) *Aggregator {
	if reservoirSize <= 0 {
		reservoirSize = 1024
	}
	return &Aggregator{
		reservoirSize: reservoirSize,
		rand:          rng.New(1, "trace-aggregator"),
		ops:           make(map[string]*opAgg),
		waitOver:      make(map[time.Duration]int),
		delayOver:     make(map[time.Duration]int),
		preEnd:        make(map[int]time.Time),
		cons:          make(map[int]time.Time),
	}
}

// Add consumes one record.
func (g *Aggregator) Add(r Record) {
	switch r.Kind {
	case KindOp:
		a := g.ops[r.Op]
		if a == nil {
			a = &opAgg{}
			g.ops[r.Op] = a
		}
		a.count++
		a.total += r.Dur
		if r.Dur > a.max {
			a.max = r.Dur
		}
		if r.Dur < 10*time.Millisecond {
			a.under10ms++
		}
		if r.Dur < 100*time.Microsecond {
			a.under100us++
		}
		// Vitter's algorithm R.
		a.seen++
		if len(a.reservoir) < g.reservoirSize {
			a.reservoir = append(a.reservoir, r.Dur)
		} else if j := g.rand.Intn(a.seen); j < g.reservoirSize {
			a.reservoir[j] = r.Dur
		}
	case KindBatchPreprocessed:
		g.batches++
		g.cpuTotal += r.Dur
		g.preEnd[r.BatchID] = r.End()
	case KindBatchWait:
		for _, th := range waitThresholds {
			if r.Dur > th {
				g.waitOver[th]++
			}
		}
	case KindBatchConsumed:
		g.cons[r.BatchID] = r.Start
		if pre, ok := g.preEnd[r.BatchID]; ok {
			delay := r.Start.Sub(pre)
			for _, th := range waitThresholds {
				if delay > th {
					g.delayOver[th]++
				}
			}
			// The join state for this batch is complete; release it so
			// memory stays bounded by in-flight batches, not epoch length.
			delete(g.preEnd, r.BatchID)
			delete(g.cons, r.BatchID)
		}
	}
}

// waitThresholds are the pre-binned thresholds the streaming pass tracks.
var waitThresholds = []time.Duration{
	100 * time.Millisecond, 500 * time.Millisecond, time.Second, 5 * time.Second,
}

// OpStat returns the streaming statistics for one op. Percentiles are
// reservoir estimates.
func (g *Aggregator) OpStat(op string) (OpStat, bool) {
	a, ok := g.ops[op]
	if !ok || a.count == 0 {
		return OpStat{Op: op}, false
	}
	st := OpStat{
		Op:         op,
		Count:      a.count,
		Total:      a.total,
		Mean:       a.total / time.Duration(a.count),
		Under10ms:  float64(a.under10ms) / float64(a.count),
		Under100us: float64(a.under100us) / float64(a.count),
	}
	sorted := append([]time.Duration(nil), a.reservoir...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.P90 = Percentile(sorted, 0.90)
	return st, true
}

// Ops returns the operation names seen, sorted.
func (g *Aggregator) Ops() []string {
	out := make([]string, 0, len(g.ops))
	for op := range g.ops {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// Batches returns the number of preprocessing spans seen.
func (g *Aggregator) Batches() int { return g.batches }

// TotalCPUSeconds returns the summed worker preprocessing time.
func (g *Aggregator) TotalCPUSeconds() float64 { return g.cpuTotal.Seconds() }

// WaitsOver returns the fraction of batches whose wait exceeded one of the
// pre-binned thresholds. ok is false for untracked thresholds.
func (g *Aggregator) WaitsOver(th time.Duration) (float64, bool) {
	n, ok := g.lookupThreshold(g.waitOver, th)
	if !ok || g.batches == 0 {
		return 0, ok
	}
	return float64(n) / float64(g.batches), true
}

// DelaysOver is WaitsOver for batch delays.
func (g *Aggregator) DelaysOver(th time.Duration) (float64, bool) {
	n, ok := g.lookupThreshold(g.delayOver, th)
	if !ok || g.batches == 0 {
		return 0, ok
	}
	return float64(n) / float64(g.batches), true
}

func (g *Aggregator) lookupThreshold(m map[time.Duration]int, th time.Duration) (int, bool) {
	for _, t := range waitThresholds {
		if t == th {
			return m[th], true
		}
	}
	return 0, false
}
