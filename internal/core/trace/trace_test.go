package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"lotus/internal/clock"
	"lotus/internal/data"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

func at(d time.Duration) time.Time { return clock.Epoch.Add(d) }

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindOp, PID: 4001, BatchID: 3, SampleIndex: 17, Op: "RandomResizedCrop", Start: at(time.Second), Dur: 1100 * time.Microsecond},
		{Kind: KindBatchPreprocessed, PID: 4002, BatchID: 9, SampleIndex: -1, Start: at(2 * time.Second), Dur: 40 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 9, SampleIndex: -1, Start: at(3 * time.Second), Dur: NoWaitMarker},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 9, SampleIndex: -1, Start: at(4 * time.Second), Dur: 0},
	}
	for _, r := range recs {
		got, err := ParseRecord(r.format())
		if err != nil {
			t.Fatalf("parse(%q): %v", r.format(), err)
		}
		if got != r {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(pid, batch uint16, sample int16, startUs, durUs uint32) bool {
		r := Record{
			Kind: KindOp, PID: int(pid), BatchID: int(batch), SampleIndex: int(sample),
			Op:    "ToTensor",
			Start: at(time.Duration(startUs) * time.Microsecond),
			Dur:   time.Duration(durUs) * time.Microsecond,
		}
		got, err := ParseRecord(r.format())
		return err == nil && got == r
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"", "op,1,2,3", "bogus,1,2,3,x,4,5", "op,a,2,3,x,4,5", "op,1,2,3,x,4",
	} {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) accepted malformed input", line)
		}
	}
}

func TestReadLogSkipsCommentsAndBlank(t *testing.T) {
	log := "# header\n\nop,1,0,5,Loader,1000,2000\npre,2,0,-1,,1000,9000\n"
	recs, err := ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
}

func TestTracerEmitsParseableLog(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	h := tr.Hooks()
	h.OnOp(4001, 0, 12, "Loader", at(time.Millisecond), 5*time.Millisecond)
	h.OnBatchPreprocessed(4001, 0, at(0), 8*time.Millisecond)
	h.OnBatchWait(4000, 0, at(8*time.Millisecond), time.Millisecond)
	h.OnBatchConsumed(4000, 0, at(9*time.Millisecond), 100*time.Microsecond)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || tr.Records() != 4 {
		t.Fatalf("got %d records (tracer says %d), want 4", len(recs), tr.Records())
	}
	if tr.Bytes() <= 0 {
		t.Fatal("tracer reports zero bytes written")
	}
	if recs[0].Op != "Loader" || recs[0].SampleIndex != 12 {
		t.Fatalf("first record %+v", recs[0])
	}
}

func TestAnalysisBatchJoinAndDelay(t *testing.T) {
	recs := []Record{
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 100 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(50 * time.Millisecond), Dur: 50 * time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(250 * time.Millisecond), Dur: time.Millisecond},
		{Kind: KindBatchPreprocessed, PID: 4002, BatchID: 1, SampleIndex: -1, Start: at(0), Dur: 600 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 1, SampleIndex: -1, Start: at(251 * time.Millisecond), Dur: NoWaitMarker},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 1, SampleIndex: -1, Start: at(900 * time.Millisecond), Dur: time.Millisecond},
	}
	a := Analyze(recs)
	bs := a.Batches()
	if len(bs) != 2 {
		t.Fatalf("joined %d batches", len(bs))
	}
	if bs[0].Delay() != 150*time.Millisecond {
		t.Fatalf("batch 0 delay %v, want 150ms", bs[0].Delay())
	}
	if !bs[1].OutOfOrder() || bs[0].OutOfOrder() {
		t.Fatal("OOO flags wrong")
	}
	if got := a.OutOfOrderBatches(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutOfOrderBatches = %v", got)
	}
	if got := a.WaitsOver(40 * time.Millisecond); got != 0.5 {
		t.Fatalf("WaitsOver = %v", got)
	}
	if got := a.DelaysOver(200 * time.Millisecond); got != 0.5 {
		t.Fatalf("DelaysOver = %v (batch1 delay %v)", got, bs[1].Delay())
	}
	if got := a.TotalCPUSeconds(); got != 0.7 {
		t.Fatalf("TotalCPUSeconds = %v", got)
	}
}

func TestOpStats(t *testing.T) {
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{
			Kind: KindOp, PID: 4001, BatchID: i / 10, SampleIndex: i, Op: "Loader",
			Start: at(time.Duration(i) * time.Millisecond),
			Dur:   time.Duration(i+1) * 100 * time.Microsecond, // 0.1ms..10ms
		})
	}
	st := Analyze(recs).OpStats()["Loader"]
	if st.Count != 100 {
		t.Fatalf("count %d", st.Count)
	}
	wantMean := 5050 * time.Microsecond
	if st.Mean != wantMean {
		t.Fatalf("mean %v, want %v", st.Mean, wantMean)
	}
	// 99 of 100 durations are < 10ms (only the 10.0ms one is not).
	if st.Under10ms != 0.99 {
		t.Fatalf("Under10ms = %v", st.Under10ms)
	}
	// Durations start at 0.1ms, so none are under 100µs.
	if st.Under100us != 0 {
		t.Fatalf("Under100us = %v", st.Under100us)
	}
	if st.P90 < 9*time.Millisecond || st.P90 > 9300*time.Microsecond {
		t.Fatalf("P90 = %v", st.P90)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(ds, 0); p != 1 {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(ds, 1); p != 10 {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(ds, 0.5); p != 5 { // pos 4.5 -> between 5 and 6 -> 5.5 truncated
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestComputeDistStats(t *testing.T) {
	ds := []time.Duration{100, 200, 300, 400}
	st := ComputeDistStats(ds)
	if st.Mean != 250 {
		t.Fatalf("mean %v", st.Mean)
	}
	if st.Min != 100 || st.Max != 400 {
		t.Fatalf("min/max %v/%v", st.Min, st.Max)
	}
	if st.IQR <= 0 {
		t.Fatalf("IQR %v", st.IQR)
	}
	if st.StdOfMean <= 0 {
		t.Fatal("StdOfMean should be positive")
	}
}

func TestOpWeightsSplitProportionally(t *testing.T) {
	recs := []Record{
		{Kind: KindOp, PID: 1, BatchID: 0, SampleIndex: 0, Op: "Loader", Start: at(0), Dur: 300 * time.Millisecond},
		{Kind: KindOp, PID: 1, BatchID: 0, SampleIndex: 0, Op: "RandomResizedCrop", Start: at(0), Dur: 100 * time.Millisecond},
		{Kind: KindOp, PID: 1, BatchID: 0, SampleIndex: 0, Op: "ToTensor", Start: at(0), Dur: 100 * time.Millisecond},
	}
	w := Analyze(recs).OpWeights([]string{"Loader", "RandomResizedCrop", "ToTensor"})
	if w["Loader"] != 0.6 || w["RandomResizedCrop"] != 0.2 || w["ToTensor"] != 0.2 {
		t.Fatalf("weights %v", w)
	}
}

func TestChromeExportStructure(t *testing.T) {
	recs := []Record{
		{Kind: KindOp, PID: 4001, BatchID: 0, SampleIndex: 3, Op: "Loader", Start: at(time.Millisecond), Dur: 4 * time.Millisecond},
		{Kind: KindBatchPreprocessed, PID: 4001, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: 10 * time.Millisecond},
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(10 * time.Millisecond), Dur: time.Millisecond},
		{Kind: KindBatchConsumed, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(11 * time.Millisecond), Dur: time.Millisecond},
	}
	out, err := ExportChrome(recs, Fine)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)]++
		if id, ok := ev["id"].(float64); ok && id >= 0 && ev["ph"] != "M" {
			t.Fatalf("event %v has non-negative synthetic id %v", ev["name"], id)
		}
	}
	for _, want := range []string{"SBatchPreprocessed_0", "SBatchWait_0", "SBatchConsumed_0", "SLoader", "batch_flow", "process_name"} {
		if names[want] == 0 {
			t.Fatalf("missing chrome event %q in %v", want, names)
		}
	}
	if names["batch_flow"] != 2 {
		t.Fatalf("flow arrow needs start+finish events, got %d", names["batch_flow"])
	}

	// Coarse granularity omits op spans.
	coarse, _ := ExportChrome(recs, Coarse)
	if bytes.Contains(coarse, []byte("SLoader")) {
		t.Fatal("coarse export should not contain op spans")
	}
}

func TestAugmentChromePreservesExisting(t *testing.T) {
	existing := []byte(`{"traceEvents":[{"name":"aten::conv2d","ph":"X","ts":5,"dur":10,"pid":1,"tid":1,"id":42}],"schemaVersion":1}`)
	recs := []Record{
		{Kind: KindBatchWait, PID: 4000, BatchID: 0, SampleIndex: -1, Start: at(0), Dur: time.Millisecond},
	}
	out, err := AugmentChrome(existing, recs, Coarse)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["schemaVersion"]; !ok {
		t.Fatal("augment dropped sibling fields")
	}
	evs := doc["traceEvents"].([]any)
	foundTorch, foundLotus := false, false
	for _, e := range evs {
		name := e.(map[string]any)["name"].(string)
		if name == "aten::conv2d" {
			foundTorch = true
		}
		if name == "SBatchWait_0" {
			foundLotus = true
		}
	}
	if !foundTorch || !foundLotus {
		t.Fatalf("merged trace missing events (torch=%v lotus=%v)", foundTorch, foundLotus)
	}
}

func TestAugmentChromeRejectsGarbage(t *testing.T) {
	if _, err := AugmentChrome([]byte("not json"), nil, Coarse); err == nil {
		t.Fatal("expected error")
	}
}

// TestEndToEndPipelineTrace runs a simulated epoch with the tracer attached
// and validates the log captures the full data flow.
func TestEndToEndPipelineTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	hooks := tr.Hooks()

	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(40, 1))
	c := pipeline.NewCompose(
		&pipeline.Loader{IO: data.DefaultIO()},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	c.Hooks = hooks
	dl := pipeline.NewDataLoader(sim, pipeline.NewImageFolder(ds, c), pipeline.Config{
		BatchSize: 10, NumWorkers: 2, Seed: 1, Hooks: hooks,
		Mode: pipeline.Simulated, Engine: native.NewEngine(native.Intel, native.DefaultCPU()),
	})
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	tr.Flush()

	recs, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(recs)
	if got := len(a.Batches()); got != 4 {
		t.Fatalf("trace contains %d batches, want 4", got)
	}
	stats := a.OpStats()
	if stats["Loader"].Count != 40 || stats["Collate"].Count != 4 {
		t.Fatalf("op counts: Loader=%d Collate=%d", stats["Loader"].Count, stats["Collate"].Count)
	}
	for _, b := range a.Batches() {
		if b.PreDur <= 0 {
			t.Fatalf("batch %d has no preprocessing span", b.ID)
		}
		if b.ConsStart.Before(b.PreEnd()) {
			t.Fatalf("batch %d consumed before preprocessed", b.ID)
		}
		if b.WorkerPID != pipeline.WorkerPID(0) && b.WorkerPID != pipeline.WorkerPID(1) {
			t.Fatalf("batch %d worker pid %d", b.ID, b.WorkerPID)
		}
	}
	// Per-batch preprocessing time must (approximately) contain its ops:
	// each op of that batch falls inside the [T1] span.
	for _, r := range recs {
		if r.Kind != KindOp {
			continue
		}
		var span BatchInfo
		for _, b := range a.Batches() {
			if b.ID == r.BatchID {
				span = b
			}
		}
		if r.Start.Before(span.PreStart) || r.End().After(span.PreEnd().Add(time.Millisecond)) {
			t.Fatalf("op %s of batch %d at %v outside its fetch span [%v, %v]",
				r.Op, r.BatchID, r.Start, span.PreStart, span.PreEnd())
		}
	}
	if FormatOpStats(stats, []string{"Loader", "RandomResizedCrop", "Collate"}) == "" {
		t.Fatal("empty Table II rendering")
	}
}

func TestMetaHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.WriteMeta(map[string]string{"workload": "IC", "batch": "512", "workers": "4"})
	h := tr.Hooks()
	h.OnBatchWait(4000, 0, at(0), time.Millisecond)
	tr.Flush()

	recs, meta, err := ReadLogWithMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records %d", len(recs))
	}
	if meta["workload"] != "IC" || meta["batch"] != "512" || meta["workers"] != "4" {
		t.Fatalf("meta %v", meta)
	}
	// Plain ReadLog skips the header transparently.
	plain, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil || len(plain) != 1 {
		t.Fatalf("ReadLog over meta header: %v, %d records", err, len(plain))
	}
}

func TestWriteMetaAfterRecordsPanics(t *testing.T) {
	tr := NewTracer(io.Discard)
	tr.Hooks().OnBatchWait(4000, 0, at(0), time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.WriteMeta(map[string]string{"a": "b"})
}

func TestReadMetaMalformed(t *testing.T) {
	if _, ok := ReadMeta("# some other comment"); ok {
		t.Fatal("non-header comment accepted")
	}
	m, ok := ReadMeta("# lotustrace v1 a=1 malformed b=2")
	if !ok || m["a"] != "1" || m["b"] != "2" {
		t.Fatalf("meta %v", m)
	}
	if _, exists := m["malformed"]; exists {
		t.Fatal("key without value accepted")
	}
}

func TestOpStatsCSVRoundTrip(t *testing.T) {
	var recs []Record
	for i := 0; i < 30; i++ {
		recs = append(recs,
			Record{Kind: KindOp, PID: 1, BatchID: i / 5, SampleIndex: i, Op: "Loader",
				Start: at(time.Duration(i) * time.Millisecond), Dur: time.Duration(i+1) * 200 * time.Microsecond},
			Record{Kind: KindOp, PID: 1, BatchID: i / 5, SampleIndex: i, Op: "ToTensor",
				Start: at(time.Duration(i) * time.Millisecond), Dur: 50 * time.Microsecond},
		)
	}
	a := Analyze(recs)
	var buf bytes.Buffer
	if err := a.WriteOpStatsCSV(&buf, []string{"Loader", "ToTensor"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOpStatsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.OpStats()
	for _, op := range []string{"Loader", "ToTensor"} {
		if back[op].Count != orig[op].Count {
			t.Fatalf("%s count %d vs %d", op, back[op].Count, orig[op].Count)
		}
		if d := back[op].Mean - orig[op].Mean; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("%s mean %v vs %v", op, back[op].Mean, orig[op].Mean)
		}
		if back[op].Under100us != orig[op].Under100us {
			t.Fatalf("%s under100us mismatch", op)
		}
	}
	if _, err := ReadOpStatsCSV(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected error on garbage")
	}
}
