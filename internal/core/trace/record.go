// Package trace implements LotusTrace: the lightweight instrumentation layer
// for the DataLoader pipeline, its on-disk log format, the analyses built on
// the logs (per-operation statistics, per-batch preprocessing/wait/delay
// times, out-of-order arrival detection), and the Chrome Trace Viewer
// exporter with main-process↔worker data-flow arrows.
//
// The design follows § III of the paper: each instrumentation point emits
// exactly one record with two timing fields (start, duration) plus batch and
// process identifiers; the tracer keeps no other state and performs no other
// computation, which is what keeps its overhead near zero (Table III).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"lotus/internal/clock"
)

// Kind discriminates record types.
type Kind uint8

const (
	// KindOp is a per-sample transform application ([T3]) or a per-batch
	// collation.
	KindOp Kind = iota
	// KindBatchPreprocessed is the worker-side fetch span ([T1]).
	KindBatchPreprocessed
	// KindBatchWait is the main process's wait for a specific batch ([T2]).
	KindBatchWait
	// KindBatchConsumed marks the main process consuming a batch.
	KindBatchConsumed
)

// tag returns the log-format tag for the kind.
func (k Kind) tag() string {
	switch k {
	case KindOp:
		return "op"
	case KindBatchPreprocessed:
		return "pre"
	case KindBatchWait:
		return "wait"
	case KindBatchConsumed:
		return "cons"
	}
	return "?"
}

func kindFromTag(s string) (Kind, error) {
	switch s {
	case "op":
		return KindOp, nil
	case "pre":
		return KindBatchPreprocessed, nil
	case "wait":
		return KindBatchWait, nil
	case "cons":
		return KindBatchConsumed, nil
	}
	return 0, fmt.Errorf("trace: unknown record tag %q", s)
}

// NoWaitMarker is the duration logged for a batch that had already arrived
// (out of order) when the main process asked for it — § III-B's 1 µs
// convention.
const NoWaitMarker = time.Microsecond

// Record is one LotusTrace log entry.
type Record struct {
	Kind    Kind
	PID     int
	BatchID int
	// SampleIndex is the dataset index for per-sample op records; -1 for
	// batch-granularity records (including collation).
	SampleIndex int
	// Op is the operation name for KindOp records.
	Op    string
	Start time.Time
	Dur   time.Duration
}

// End returns the record's end time.
func (r Record) End() time.Time { return r.Start.Add(r.Dur) }

// format renders the stable on-disk representation:
//
//	tag,pid,batch,sample,op,start_ns,dur_ns
//
// start_ns is relative to clock.Epoch so simulated logs are reproducible
// byte-for-byte.
func (r Record) format() string {
	return string(r.appendFormat(nil))
}

// appendFormat appends the record's on-disk form to b and returns the
// extended slice. This is the tracer's emission fast path: with a reused
// buffer it performs zero allocations per record, where the fmt.Sprintf
// formulation cost seven (Table III's near-zero tracing overhead depends on
// emission staying off the allocator).
func (r Record) appendFormat(b []byte) []byte {
	b = append(b, r.Kind.tag()...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.PID), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.BatchID), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(r.SampleIndex), 10)
	b = append(b, ',')
	b = append(b, r.Op...)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.Start.Sub(clock.Epoch).Nanoseconds(), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, r.Dur.Nanoseconds(), 10)
	return b
}

// ParseRecord parses one log line.
func ParseRecord(line string) (Record, error) {
	parts := strings.Split(strings.TrimSpace(line), ",")
	if len(parts) != 7 {
		return Record{}, fmt.Errorf("trace: malformed record (want 7 fields, got %d): %q", len(parts), line)
	}
	kind, err := kindFromTag(parts[0])
	if err != nil {
		return Record{}, err
	}
	ints := make([]int64, 0, 5)
	for _, i := range []int{1, 2, 3, 5, 6} {
		v, err := strconv.ParseInt(parts[i], 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("trace: bad integer field %d in %q: %v", i, line, err)
		}
		ints = append(ints, v)
	}
	return Record{
		Kind:        kind,
		PID:         int(ints[0]),
		BatchID:     int(ints[1]),
		SampleIndex: int(ints[2]),
		Op:          parts[4],
		Start:       clock.Epoch.Add(time.Duration(ints[3])),
		Dur:         time.Duration(ints[4]),
	}, nil
}

// ReadMeta extracts the provenance header written by Tracer.WriteMeta from
// the first comment line, if present.
func ReadMeta(line string) (map[string]string, bool) {
	line = strings.TrimSpace(line)
	const prefix = "# lotustrace v1"
	if !strings.HasPrefix(line, prefix) {
		return nil, false
	}
	meta := map[string]string{}
	for _, kv := range strings.Fields(line[len(prefix):]) {
		if i := strings.IndexByte(kv, '='); i > 0 {
			meta[kv[:i]] = kv[i+1:]
		}
	}
	return meta, true
}

// ReadLogWithMeta parses a log stream and returns the provenance header (nil
// if absent).
func ReadLogWithMeta(r io.Reader) ([]Record, map[string]string, error) {
	var meta map[string]string
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if m, ok := ReadMeta(text); ok && meta == nil {
				meta = m
			}
			continue
		}
		rec, err := ParseRecord(text)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, meta, nil
}

// ReadLog parses a whole log stream.
func ReadLog(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := ParseRecord(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
