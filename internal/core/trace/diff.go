package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Diff compares two traced runs of the same pipeline — the
// before-and-after view a practitioner needs when applying an optimization
// the advisor suggested (more workers, offline decode, a different dispatch
// policy).
type Diff struct {
	Ops []DiffRow
	// Epoch-level deltas.
	BatchesBefore, BatchesAfter       int
	CPUSecondsBefore, CPUSecondsAfter float64
	WallBefore, WallAfter             time.Duration
	WaitFracBefore, WaitFracAfter     float64 // waits > 500ms
	DelayFracBefore, DelayFracAfter   float64 // delays > 500ms
	OOOBefore, OOOAfter               int
}

// DiffRow is one operation's before/after comparison.
type DiffRow struct {
	Op            string
	Before, After OpStat
	// Ratio is After.Mean / Before.Mean (0 when the op vanished).
	Ratio float64
	// Significant reports whether the mean shift clears a Welch two-sample
	// test at ~95% (|t| > 2) — so per-op noise is not misread as an
	// optimization effect.
	Significant bool
}

// welchT computes the Welch two-sample t statistic for the two op stats.
func welchT(a, b OpStat) float64 {
	if a.Count < 2 || b.Count < 2 {
		return 0
	}
	va := float64(a.Std) * float64(a.Std) / float64(a.Count)
	vb := float64(b.Std) * float64(b.Std) / float64(b.Count)
	den := math.Sqrt(va + vb)
	if den == 0 {
		if a.Mean == b.Mean {
			return 0
		}
		return math.Inf(1)
	}
	return (float64(b.Mean) - float64(a.Mean)) / den
}

// wallSpan estimates a run's duration from its records.
func wallSpan(a *Analysis) time.Duration {
	var start, end time.Time
	first := true
	for _, r := range a.Records {
		if first || r.Start.Before(start) {
			start = r.Start
		}
		if first || r.End().After(end) {
			end = r.End()
		}
		first = false
	}
	if first {
		return 0
	}
	return end.Sub(start)
}

// DiffAnalyses builds the comparison.
func DiffAnalyses(before, after *Analysis) *Diff {
	d := &Diff{
		BatchesBefore:    len(before.Batches()),
		BatchesAfter:     len(after.Batches()),
		CPUSecondsBefore: before.TotalCPUSeconds(),
		CPUSecondsAfter:  after.TotalCPUSeconds(),
		WallBefore:       wallSpan(before),
		WallAfter:        wallSpan(after),
		WaitFracBefore:   before.WaitsOver(500 * time.Millisecond),
		WaitFracAfter:    after.WaitsOver(500 * time.Millisecond),
		DelayFracBefore:  before.DelaysOver(500 * time.Millisecond),
		DelayFracAfter:   after.DelaysOver(500 * time.Millisecond),
		OOOBefore:        len(before.OutOfOrderBatches()),
		OOOAfter:         len(after.OutOfOrderBatches()),
	}
	bOps := before.OpStats()
	aOps := after.OpStats()
	names := map[string]bool{}
	for op := range bOps {
		names[op] = true
	}
	for op := range aOps {
		names[op] = true
	}
	sorted := make([]string, 0, len(names))
	for op := range names {
		sorted = append(sorted, op)
	}
	sort.Strings(sorted)
	for _, op := range sorted {
		row := DiffRow{Op: op, Before: bOps[op], After: aOps[op]}
		if row.Before.Mean > 0 {
			row.Ratio = float64(row.After.Mean) / float64(row.Before.Mean)
		}
		row.Significant = math.Abs(welchT(row.Before, row.After)) > 2
		d.Ops = append(d.Ops, row)
	}
	return d
}

// Render prints the comparison table.
func (d *Diff) Render() string {
	var b strings.Builder
	b.WriteString("trace diff (before -> after)\n\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %8s %5s\n", "operation (mean)", "before", "after", "ratio", "sig")
	for _, row := range d.Ops {
		ratio := "-"
		if row.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", row.Ratio)
		}
		sig := ""
		if row.Significant {
			sig = "*"
		}
		fmt.Fprintf(&b, "%-28s %12v %12v %8s %5s\n", row.Op,
			row.Before.Mean.Round(10*time.Microsecond), row.After.Mean.Round(10*time.Microsecond), ratio, sig)
	}
	fmt.Fprintf(&b, "\n%-28s %12v %12v", "wall span", d.WallBefore.Round(time.Millisecond), d.WallAfter.Round(time.Millisecond))
	if d.WallBefore > 0 {
		fmt.Fprintf(&b, " %7.2fx", float64(d.WallAfter)/float64(d.WallBefore))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s %12.1f %12.1f\n", "cpu seconds", d.CPUSecondsBefore, d.CPUSecondsAfter)
	fmt.Fprintf(&b, "%-28s %11.1f%% %11.1f%%\n", "waits > 500ms", 100*d.WaitFracBefore, 100*d.WaitFracAfter)
	fmt.Fprintf(&b, "%-28s %11.1f%% %11.1f%%\n", "delays > 500ms", 100*d.DelayFracBefore, 100*d.DelayFracAfter)
	fmt.Fprintf(&b, "%-28s %12d %12d\n", "out-of-order batches", d.OOOBefore, d.OOOAfter)
	return b.String()
}
