package trace

import (
	"bytes"
	"fmt"
	"html/template"
	"sort"
	"time"
)

// This file renders a traced run as a single self-contained HTML report:
// run summary, advisor findings, per-operation statistics, wait/delay
// histograms, and an SVG timeline with the worker→main structure of the
// paper's Figure 2 — everything a practitioner needs from one run without
// loading Chrome tracing.

// reportData feeds the HTML template.
type reportData struct {
	Meta      []kv
	Summary   []kv
	Findings  []Finding
	Ops       []opRow
	WaitHist  []histBar
	DelayHist []histBar
	Timeline  template.HTML
}

type kv struct{ K, V string }

type opRow struct {
	Op                    string
	Count                 int
	Mean, P90, Total      string
	Under10ms, Under100us string
	Share                 float64 // CPU share 0..100 for the inline bar
}

type histBar struct {
	Label string
	Count int
	Pct   float64
}

// BuildHTMLReport renders the report. meta may be nil.
func BuildHTMLReport(records []Record, meta map[string]string) ([]byte, error) {
	a := Analyze(records)
	d := reportData{}

	metaKeys := make([]string, 0, len(meta))
	for k := range meta {
		metaKeys = append(metaKeys, k)
	}
	sort.Strings(metaKeys)
	for _, k := range metaKeys {
		d.Meta = append(d.Meta, kv{k, meta[k]})
	}

	batches := a.Batches()
	d.Summary = []kv{
		{"batches", fmt.Sprint(len(batches))},
		{"records", fmt.Sprint(len(records))},
		{"wall span", wallSpan(a).Round(time.Millisecond).String()},
		{"preprocessing CPU", fmt.Sprintf("%.2fs", a.TotalCPUSeconds())},
		{"out-of-order batches", fmt.Sprint(len(a.OutOfOrderBatches()))},
		{"waits > 500ms", fmt.Sprintf("%.1f%%", 100*a.WaitsOver(500*time.Millisecond))},
		{"delays > 500ms", fmt.Sprintf("%.1f%%", 100*a.DelaysOver(500*time.Millisecond))},
	}

	d.Findings = a.Advise(AdvisorConfig{})

	stats := a.OpStats()
	var total time.Duration
	for _, st := range stats {
		total += st.Total
	}
	ops := make([]string, 0, len(stats))
	for op := range stats {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return stats[ops[i]].Total > stats[ops[j]].Total })
	for _, op := range ops {
		st := stats[op]
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.Total) / float64(total)
		}
		d.Ops = append(d.Ops, opRow{
			Op:         op,
			Count:      st.Count,
			Mean:       st.Mean.Round(10 * time.Microsecond).String(),
			P90:        st.P90.Round(10 * time.Microsecond).String(),
			Total:      st.Total.Round(time.Millisecond).String(),
			Under10ms:  fmt.Sprintf("%.1f%%", 100*st.Under10ms),
			Under100us: fmt.Sprintf("%.1f%%", 100*st.Under100us),
			Share:      share,
		})
	}

	var waits, delays []time.Duration
	for _, b := range batches {
		waits = append(waits, b.WaitDur)
		delays = append(delays, b.Delay())
	}
	d.WaitHist = histogram(waits)
	d.DelayHist = histogram(delays)
	d.Timeline = template.HTML(timelineSVG(records, 900))

	var buf bytes.Buffer
	if err := reportTemplate.Execute(&buf, d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// histogram buckets durations into log-spaced bins.
func histogram(ds []time.Duration) []histBar {
	bins := []struct {
		label string
		upper time.Duration
	}{
		{"<1ms", time.Millisecond},
		{"1–10ms", 10 * time.Millisecond},
		{"10–100ms", 100 * time.Millisecond},
		{"0.1–0.5s", 500 * time.Millisecond},
		{"0.5–2s", 2 * time.Second},
		{">2s", 1<<63 - 1},
	}
	counts := make([]int, len(bins))
	for _, d := range ds {
		for i, b := range bins {
			if d < b.upper {
				counts[i]++
				break
			}
		}
	}
	maxN := 1
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	out := make([]histBar, len(bins))
	for i, b := range bins {
		out[i] = histBar{Label: b.label, Count: counts[i], Pct: 100 * float64(counts[i]) / float64(maxN)}
	}
	return out
}

// timelineSVG renders the coarse timeline as inline SVG.
func timelineSVG(records []Record, width int) string {
	var start, end time.Time
	first := true
	for _, r := range records {
		if r.Kind == KindOp {
			continue
		}
		if first || r.Start.Before(start) {
			start = r.Start
		}
		if first || r.End().After(end) {
			end = r.End()
		}
		first = false
	}
	if first || !end.After(start) {
		return "<svg width='10' height='10'></svg>"
	}
	span := end.Sub(start)
	x := func(t time.Time) float64 {
		return float64(t.Sub(start)) / float64(span) * float64(width)
	}

	mainPID := mainPIDOf(records)
	pids := map[int]bool{}
	for _, r := range records {
		if r.Kind != KindOp {
			pids[r.PID] = true
		}
	}
	order := make([]int, 0, len(pids))
	for pid := range pids {
		order = append(order, pid)
	}
	sort.Slice(order, func(i, j int) bool {
		if (order[i] == mainPID) != (order[j] == mainPID) {
			return order[i] == mainPID
		}
		return order[i] < order[j]
	})
	rowOf := map[int]int{}
	for i, pid := range order {
		rowOf[pid] = i
	}
	const rowH, pad = 22, 4
	height := len(order)*rowH + 24

	var b bytes.Buffer
	fmt.Fprintf(&b, `<svg width="%d" height="%d" font-family="monospace" font-size="10">`, width+120, height)
	for i, pid := range order {
		name := fmt.Sprintf("worker %d", pid)
		if pid == mainPID {
			name = "main"
		}
		fmt.Fprintf(&b, `<text x="0" y="%d">%s</text>`, i*rowH+14, name)
	}
	esc := func(t time.Time) float64 { return 110 + x(t) }
	for _, r := range records {
		row, ok := rowOf[r.PID]
		if !ok {
			continue
		}
		y := row*rowH + pad
		switch r.Kind {
		case KindBatchPreprocessed:
			w := x(r.End()) - x(r.Start)
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#4c78a8"><title>batch %d (%v)</title></rect>`,
				esc(r.Start), y, w, rowH-2*pad, r.BatchID, r.Dur.Round(time.Millisecond))
		case KindBatchWait:
			if r.Dur <= NoWaitMarker {
				continue
			}
			w := x(r.End()) - x(r.Start)
			if w < 1 {
				w = 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#e45756" opacity="0.7"><title>wait for batch %d (%v)</title></rect>`,
				esc(r.Start), y, w, rowH-2*pad, r.BatchID, r.Dur.Round(time.Millisecond))
		case KindBatchConsumed:
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="2" height="%d" fill="#54a24b"><title>batch %d consumed</title></rect>`,
				esc(r.Start), y, rowH-2*pad, r.BatchID)
		}
	}
	fmt.Fprintf(&b, `<text x="110" y="%d">0</text><text x="%d" y="%d" text-anchor="end">%v</text>`,
		height-6, width+110, height-6, span.Round(time.Millisecond))
	b.WriteString("</svg>")
	return b.String()
}

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>LotusTrace report</title>
<style>
body { font-family: -apple-system, sans-serif; margin: 2em auto; max-width: 1080px; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #e0e0e0; font-size: 0.9em; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; }
.card { background: #f6f6f8; border-radius: 6px; padding: 8px 14px; }
.card b { display: block; font-size: 1.1em; }
.sev-critical { color: #b3261e; font-weight: 600; }
.sev-warning { color: #9a6700; font-weight: 600; }
.sev-info { color: #2f6fb7; }
.bar { background: #4c78a8; height: 10px; display: inline-block; }
.hist td { padding: 2px 10px; }
.meta { color: #666; font-size: 0.85em; }
</style></head><body>
<h1>LotusTrace report</h1>
{{if .Meta}}<p class="meta">{{range .Meta}}{{.K}}={{.V}} {{end}}</p>{{end}}

<h2>Run summary</h2>
<div class="cards">{{range .Summary}}<div class="card"><b>{{.V}}</b>{{.K}}</div>{{end}}</div>

<h2>Advisor findings</h2>
{{if .Findings}}<table>{{range .Findings}}
<tr><td class="sev-{{.Severity}}">{{.Severity}}</td><td><b>{{.Rule}}</b></td><td>{{.Detail}}</td></tr>
{{end}}</table>{{else}}<p>no findings: the pipeline looks healthy.</p>{{end}}

<h2>Per-operation statistics</h2>
<table><tr><th>operation</th><th>count</th><th>mean</th><th>p90</th><th>total</th><th>&lt;10ms</th><th>&lt;100µs</th><th>CPU share</th></tr>
{{range .Ops}}<tr><td>{{.Op}}</td><td>{{.Count}}</td><td>{{.Mean}}</td><td>{{.P90}}</td><td>{{.Total}}</td>
<td>{{.Under10ms}}</td><td>{{.Under100us}}</td>
<td><span class="bar" style="width:{{printf "%.0f" .Share}}px"></span> {{printf "%.1f" .Share}}%</td></tr>{{end}}
</table>

<h2>Main-process wait times</h2>
<table class="hist">{{range .WaitHist}}<tr><td>{{.Label}}</td><td><span class="bar" style="width:{{printf "%.0f" .Pct}}px"></span></td><td>{{.Count}}</td></tr>{{end}}</table>

<h2>Batch delay times (preprocessed → consumed)</h2>
<table class="hist">{{range .DelayHist}}<tr><td>{{.Label}}</td><td><span class="bar" style="width:{{printf "%.0f" .Pct}}px"></span></td><td>{{.Count}}</td></tr>{{end}}</table>

<h2>Timeline</h2>
<p class="meta">blue: batch preprocessing spans; red: main-process waits; green ticks: consumption.</p>
{{.Timeline}}
</body></html>
`))
