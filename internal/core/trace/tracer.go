package trace

import (
	"bufio"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"lotus/internal/pipeline"
)

// Tracer is the LotusTrace logger. It formats records to a writer as they
// arrive and maintains nothing else — no aggregation, no buffering of
// history — mirroring the paper's minimal-state design. It is safe for
// concurrent use (real-clock pipelines log from multiple goroutines).
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	records int
	bytes   int64
	// scratch is the per-tracer formatting buffer, reused under mu so record
	// emission performs zero heap allocations.
	scratch []byte
	// perLogCost is propagated into the Hooks so the pipeline charges each
	// record's emission cost to the emitting proc.
	perLogCost time.Duration
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithPerLogCost sets the modeled cost per emitted record (the paper
// measures ~200 µs per log on its setup; the default is 0, i.e. free).
func WithPerLogCost(d time.Duration) Option {
	return func(t *Tracer) { t.perLogCost = d }
}

// NewTracer writes LotusTrace records to w.
func NewTracer(w io.Writer, opts ...Option) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16)}
	for _, o := range opts {
		o(t)
	}
	return t
}

// WriteMeta prepends a provenance header describing the traced run (free
// key=value pairs: workload, batch size, workers, seed). Readers skip it as
// a comment; ReadMeta recovers it so lotus-diff can flag incomparable runs.
// Call before the first record.
func (t *Tracer) WriteMeta(meta map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.records > 0 {
		panic("trace: WriteMeta after records were emitted")
	}
	keys := make([]string, 0, len(meta))
	size := len("# lotustrace v1") + 1
	for k := range meta {
		keys = append(keys, k)
		size += 1 + len(k) + 1 + len(meta[k])
	}
	sort.Strings(keys)
	var b strings.Builder
	b.Grow(size)
	b.WriteString("# lotustrace v1")
	for _, k := range keys {
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(meta[k])
	}
	b.WriteByte('\n')
	n, _ := t.w.WriteString(b.String())
	t.bytes += int64(n)
}

func (t *Tracer) emit(r Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scratch = r.appendFormat(t.scratch[:0])
	t.scratch = append(t.scratch, '\n')
	n, _ := t.w.Write(t.scratch)
	t.records++
	t.bytes += int64(n)
}

// Hooks returns the pipeline instrumentation callbacks that feed this
// tracer. Pass the result as both the Compose hooks and the DataLoader
// config hooks (the paper similarly threads one log file through the
// Compose and ImageFolder/DataLoader APIs).
func (t *Tracer) Hooks() *pipeline.Hooks {
	return &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			t.emit(Record{Kind: KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
			t.emit(Record{Kind: KindBatchPreprocessed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			t.emit(Record{Kind: KindBatchWait, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
			t.emit(Record{Kind: KindBatchConsumed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		PerLogCost: t.perLogCost,
	}
}

// Flush writes buffered records through to the underlying writer.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// Records reports how many records have been emitted.
func (t *Tracer) Records() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.records
}

// Bytes reports the log storage consumed so far (pre-Flush bytes included),
// the Table III storage-overhead metric.
func (t *Tracer) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}
