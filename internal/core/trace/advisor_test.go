package trace

import (
	"strings"
	"testing"
	"time"
)

// mkBatch appends the three records of one batch with the given timings.
func mkBatch(recs []Record, id, worker int, preStart, preDur, waitDur, consAt time.Duration) []Record {
	return append(recs,
		Record{Kind: KindBatchPreprocessed, PID: 4001 + worker, BatchID: id, SampleIndex: -1, Start: at(preStart), Dur: preDur},
		Record{Kind: KindBatchWait, PID: 4000, BatchID: id, SampleIndex: -1, Start: at(consAt - waitDur), Dur: waitDur},
		Record{Kind: KindBatchConsumed, PID: 4000, BatchID: id, SampleIndex: -1, Start: at(consAt), Dur: time.Millisecond},
	)
}

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestAdvisorPreprocessingBound(t *testing.T) {
	var recs []Record
	for i := 0; i < 10; i++ {
		base := time.Duration(i) * 2 * time.Second
		recs = mkBatch(recs, i, 0, base, 1900*time.Millisecond, 1800*time.Millisecond, base+1950*time.Millisecond)
	}
	fs := Analyze(recs).Advise(AdvisorConfig{})
	if !hasRule(fs, "preprocessing-bound") {
		t.Fatalf("expected preprocessing-bound finding, got %v", fs)
	}
	if fs[0].Severity != Critical {
		t.Fatalf("preprocessing-bound should be critical and first, got %v", fs[0])
	}
	if hasRule(fs, "gpu-bound") {
		t.Fatal("cannot be both preprocessing- and gpu-bound")
	}
}

func TestAdvisorGPUBound(t *testing.T) {
	var recs []Record
	for i := 0; i < 10; i++ {
		// Preprocessed immediately, consumed 3s later, tiny wait.
		base := time.Duration(i) * 100 * time.Millisecond
		recs = mkBatch(recs, i, i%4, base, 80*time.Millisecond, NoWaitMarker, base+3*time.Second)
	}
	fs := Analyze(recs).Advise(AdvisorConfig{})
	if !hasRule(fs, "gpu-bound") {
		t.Fatalf("expected gpu-bound finding, got %v", fs)
	}
	if hasRule(fs, "preprocessing-bound") {
		t.Fatal("unexpected preprocessing-bound")
	}
	// 1µs waits mark OOO arrivals, so the OOO rule fires too.
	if !hasRule(fs, "out-of-order-arrivals") {
		t.Fatalf("expected OOO finding, got %v", fs)
	}
}

func TestAdvisorHighVariance(t *testing.T) {
	var recs []Record
	durs := []time.Duration{100, 100, 100, 900, 100, 950, 100, 100}
	for i, d := range durs {
		base := time.Duration(i) * time.Second
		recs = mkBatch(recs, i, 0, base, d*time.Millisecond, 10*time.Millisecond, base+990*time.Millisecond)
	}
	fs := Analyze(recs).Advise(AdvisorConfig{})
	if !hasRule(fs, "high-batch-variance") {
		t.Fatalf("expected variance warning, got %v", fs)
	}
}

func TestAdvisorDominantOperation(t *testing.T) {
	recs := []Record{
		{Kind: KindOp, PID: 4001, BatchID: 0, SampleIndex: 0, Op: "Loader", Start: at(0), Dur: 9 * time.Second},
		{Kind: KindOp, PID: 4001, BatchID: 0, SampleIndex: 0, Op: "ToTensor", Start: at(0), Dur: time.Second},
	}
	recs = mkBatch(recs, 0, 0, 0, 10*time.Second, 10*time.Millisecond, 10*time.Second+time.Millisecond)
	fs := Analyze(recs).Advise(AdvisorConfig{})
	if !hasRule(fs, "dominant-operation") {
		t.Fatalf("expected dominant-operation finding, got %v", fs)
	}
	found := false
	for _, f := range fs {
		if f.Rule == "dominant-operation" && strings.Contains(f.Detail, "Loader") {
			found = true
		}
	}
	if !found {
		t.Fatal("dominant-operation should name Loader")
	}
}

func TestAdvisorEmptyTrace(t *testing.T) {
	fs := Analyze(nil).Advise(AdvisorConfig{})
	if len(fs) != 1 || fs[0].Rule != "empty-trace" {
		t.Fatalf("empty analysis should yield the empty-trace finding, got %v", fs)
	}
}

func TestAdvisorHealthyPipelineQuiet(t *testing.T) {
	var recs []Record
	// Balanced: modest waits, modest delays, uniform batches, two ops.
	for i := 0; i < 10; i++ {
		base := time.Duration(i) * time.Second
		recs = mkBatch(recs, i, i%2, base, 400*time.Millisecond, 50*time.Millisecond, base+500*time.Millisecond)
		recs = append(recs,
			Record{Kind: KindOp, PID: 4001, BatchID: i, SampleIndex: i, Op: "Loader", Start: at(base), Dur: 200 * time.Millisecond},
			Record{Kind: KindOp, PID: 4001, BatchID: i, SampleIndex: i, Op: "Resize", Start: at(base), Dur: 200 * time.Millisecond},
		)
	}
	fs := Analyze(recs).Advise(AdvisorConfig{})
	for _, f := range fs {
		if f.Severity == Critical {
			t.Fatalf("healthy pipeline produced critical finding: %+v", f)
		}
	}
}

func TestFormatFindings(t *testing.T) {
	if got := FormatFindings(nil); !strings.Contains(got, "healthy") {
		t.Fatalf("empty findings rendering: %q", got)
	}
	out := FormatFindings([]Finding{{Severity: Critical, Rule: "x", Detail: "y"}})
	if !strings.Contains(out, "critical") || !strings.Contains(out, "x") {
		t.Fatalf("rendering: %q", out)
	}
}

func TestAggregatorMatchesAnalyze(t *testing.T) {
	// Build a realistic record stream and verify the streaming aggregator
	// agrees with the batch Analyze on exact statistics.
	var recs []Record
	for i := 0; i < 200; i++ {
		base := time.Duration(i) * 50 * time.Millisecond
		d := time.Duration(1+i%17) * time.Millisecond
		recs = append(recs, Record{Kind: KindOp, PID: 4001, BatchID: i / 10, SampleIndex: i, Op: "Loader", Start: at(base), Dur: d})
	}
	for b := 0; b < 20; b++ {
		base := time.Duration(b) * 500 * time.Millisecond
		recs = mkBatch(recs, b, 0, base, 400*time.Millisecond, 600*time.Millisecond, base+1100*time.Millisecond)
	}

	agg := NewAggregator(4096) // reservoir larger than data -> exact
	for _, r := range recs {
		agg.Add(r)
	}
	a := Analyze(recs)

	exact := a.OpStats()["Loader"]
	st, ok := agg.OpStat("Loader")
	if !ok {
		t.Fatal("aggregator lost the Loader op")
	}
	if st.Count != exact.Count || st.Mean != exact.Mean || st.Total != exact.Total {
		t.Fatalf("count/mean/total mismatch: %+v vs %+v", st, exact)
	}
	if st.P90 != exact.P90 {
		t.Fatalf("P90 mismatch with full reservoir: %v vs %v", st.P90, exact.P90)
	}
	if st.Under10ms != exact.Under10ms || st.Under100us != exact.Under100us {
		t.Fatal("threshold fractions mismatch")
	}

	if agg.Batches() != 20 {
		t.Fatalf("batches = %d", agg.Batches())
	}
	if got := agg.TotalCPUSeconds(); got != a.TotalCPUSeconds() {
		t.Fatalf("cpu seconds %v vs %v", got, a.TotalCPUSeconds())
	}
	wf, ok := agg.WaitsOver(500 * time.Millisecond)
	if !ok || wf != a.WaitsOver(500*time.Millisecond) {
		t.Fatalf("waits-over mismatch: %v vs %v", wf, a.WaitsOver(500*time.Millisecond))
	}
	df, ok := agg.DelaysOver(500 * time.Millisecond)
	if !ok || df != a.DelaysOver(500*time.Millisecond) {
		t.Fatalf("delays-over mismatch: %v vs %v", df, a.DelaysOver(500*time.Millisecond))
	}
}

func TestAggregatorReservoirApproximatesP90(t *testing.T) {
	agg := NewAggregator(512)
	for i := 0; i < 50000; i++ {
		agg.Add(Record{Kind: KindOp, PID: 1, BatchID: 0, SampleIndex: i, Op: "X",
			Start: at(0), Dur: time.Duration(i%1000+1) * time.Microsecond})
	}
	st, _ := agg.OpStat("X")
	// True P90 is ~900µs; reservoir estimate should land within 10%.
	want := 900 * time.Microsecond
	if st.P90 < want-90*time.Microsecond || st.P90 > want+90*time.Microsecond {
		t.Fatalf("reservoir P90 %v, want ~%v", st.P90, want)
	}
}

func TestAggregatorBoundedJoinState(t *testing.T) {
	agg := NewAggregator(0)
	for b := 0; b < 10000; b++ {
		base := time.Duration(b) * time.Millisecond
		agg.Add(Record{Kind: KindBatchPreprocessed, PID: 1, BatchID: b, SampleIndex: -1, Start: at(base), Dur: time.Millisecond})
		agg.Add(Record{Kind: KindBatchConsumed, PID: 0, BatchID: b, SampleIndex: -1, Start: at(base + 2*time.Millisecond), Dur: 0})
	}
	if n := len(agg.preEnd); n != 0 {
		t.Fatalf("join state retained %d completed batches; memory is unbounded", n)
	}
}

func TestAggregatorUntrackedThreshold(t *testing.T) {
	agg := NewAggregator(0)
	if _, ok := agg.WaitsOver(123 * time.Millisecond); ok {
		t.Fatal("untracked threshold should report !ok")
	}
}

func TestDiffAnalyses(t *testing.T) {
	mkRun := func(loaderMs, waitMs int) *Analysis {
		var recs []Record
		for i := 0; i < 10; i++ {
			base := time.Duration(i) * time.Second
			recs = append(recs, Record{Kind: KindOp, PID: 4001, BatchID: i, SampleIndex: i, Op: "Loader",
				Start: at(base), Dur: time.Duration(loaderMs) * time.Millisecond})
			recs = mkBatch(recs, i, 0, base, time.Duration(loaderMs)*time.Millisecond,
				time.Duration(waitMs)*time.Millisecond, base+900*time.Millisecond)
		}
		return Analyze(recs)
	}
	before := mkRun(200, 600)
	after := mkRun(100, 100)
	d := DiffAnalyses(before, after)

	var loaderRow *DiffRow
	for i := range d.Ops {
		if d.Ops[i].Op == "Loader" {
			loaderRow = &d.Ops[i]
		}
	}
	if loaderRow == nil {
		t.Fatal("missing Loader row")
	}
	if loaderRow.Ratio < 0.45 || loaderRow.Ratio > 0.55 {
		t.Fatalf("Loader ratio %.2f, want ~0.5", loaderRow.Ratio)
	}
	if d.WaitFracBefore != 1.0 || d.WaitFracAfter != 0.0 {
		t.Fatalf("wait fracs %v -> %v", d.WaitFracBefore, d.WaitFracAfter)
	}
	if d.CPUSecondsAfter >= d.CPUSecondsBefore {
		t.Fatal("cpu seconds should drop")
	}
	out := d.Render()
	if !strings.Contains(out, "Loader") || !strings.Contains(out, "0.50x") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDiffHandlesDisjointOps(t *testing.T) {
	a := Analyze([]Record{{Kind: KindOp, PID: 1, BatchID: 0, Op: "OldOp", Start: at(0), Dur: time.Millisecond}})
	b := Analyze([]Record{{Kind: KindOp, PID: 1, BatchID: 0, Op: "NewOp", Start: at(0), Dur: time.Millisecond}})
	d := DiffAnalyses(a, b)
	if len(d.Ops) != 2 {
		t.Fatalf("ops %v", d.Ops)
	}
	for _, row := range d.Ops {
		if row.Op == "NewOp" && row.Ratio != 0 {
			t.Fatal("new op should have no ratio (no baseline)")
		}
	}
}

func TestWorkerUtilizationAndImbalanceRule(t *testing.T) {
	var recs []Record
	// Worker 0 does 3 heavy batches, worker 1 one light one.
	recs = mkBatch(recs, 0, 0, 0, 900*time.Millisecond, 10*time.Millisecond, 950*time.Millisecond)
	recs = mkBatch(recs, 1, 1, 0, 200*time.Millisecond, 10*time.Millisecond, 1200*time.Millisecond)
	recs = mkBatch(recs, 2, 0, time.Second, 900*time.Millisecond, 10*time.Millisecond, 1950*time.Millisecond)
	recs = mkBatch(recs, 3, 0, 2*time.Second, 900*time.Millisecond, 10*time.Millisecond, 2950*time.Millisecond)
	a := Analyze(recs)
	util := a.WorkerUtilization()
	if len(util.PerWorker) != 2 {
		t.Fatalf("workers %v", util.PerWorker)
	}
	if util.Imbalance < 10 {
		t.Fatalf("imbalance %.1f, want ~13.5 (2.7s vs 0.2s)", util.Imbalance)
	}
	if util.PerWorker[4001] <= util.PerWorker[4002] {
		t.Fatal("worker 0 (pid 4001) should be the busy one")
	}
	if !hasRule(a.Advise(AdvisorConfig{}), "worker-imbalance") {
		t.Fatal("advisor missed the imbalance")
	}
}

func TestWorkerUtilizationBalancedQuiet(t *testing.T) {
	var recs []Record
	for i := 0; i < 8; i++ {
		base := time.Duration(i/2) * time.Second
		recs = mkBatch(recs, i, i%2, base, 450*time.Millisecond, 10*time.Millisecond, base+500*time.Millisecond)
	}
	a := Analyze(recs)
	if util := a.WorkerUtilization(); util.Imbalance > 1.1 {
		t.Fatalf("balanced run reports imbalance %.2f", util.Imbalance)
	}
	if hasRule(a.Advise(AdvisorConfig{}), "worker-imbalance") {
		t.Fatal("false-positive imbalance finding")
	}
}

func TestWelchSignificance(t *testing.T) {
	mk := func(base, spread time.Duration, n int, shift time.Duration) *Analysis {
		var recs []Record
		for i := 0; i < n; i++ {
			d := base + shift + time.Duration(i%5)*spread
			recs = append(recs, Record{Kind: KindOp, PID: 1, BatchID: i, SampleIndex: i,
				Op: "Loader", Start: at(time.Duration(i) * time.Second), Dur: d})
		}
		return Analyze(recs)
	}
	// Clear shift vs noise: 5ms mean move on ~0.3ms spread, n=50.
	sig := DiffAnalyses(
		mk(10*time.Millisecond, 100*time.Microsecond, 50, 0),
		mk(10*time.Millisecond, 100*time.Microsecond, 50, 5*time.Millisecond),
	)
	if !sig.Ops[0].Significant {
		t.Fatalf("obvious 50%% shift not significant: %+v", sig.Ops[0])
	}
	// No shift at all: same distribution twice.
	same := DiffAnalyses(
		mk(10*time.Millisecond, 2*time.Millisecond, 50, 0),
		mk(10*time.Millisecond, 2*time.Millisecond, 50, 0),
	)
	if same.Ops[0].Significant {
		t.Fatalf("identical distributions flagged significant: %+v", same.Ops[0])
	}
	// Tiny sample: never significant.
	tiny := DiffAnalyses(
		mk(10*time.Millisecond, time.Millisecond, 1, 0),
		mk(10*time.Millisecond, time.Millisecond, 1, 5*time.Millisecond),
	)
	if tiny.Ops[0].Significant {
		t.Fatal("n=1 flagged significant")
	}
}

func TestOpStatStd(t *testing.T) {
	var recs []Record
	for i, d := range []time.Duration{100, 200, 300, 400} {
		recs = append(recs, Record{Kind: KindOp, PID: 1, BatchID: 0, SampleIndex: i,
			Op: "X", Start: at(0), Dur: d * time.Millisecond})
	}
	st := Analyze(recs).OpStats()["X"]
	// Population std of {100,200,300,400}ms is ~111.8ms.
	want := 111800 * time.Microsecond
	if st.Std < want-time.Millisecond || st.Std > want+time.Millisecond {
		t.Fatalf("Std %v, want ~%v", st.Std, want)
	}
}
