package trace

import (
	"sync"
	"testing"
	"time"

	"lotus/internal/clock"
)

func ringRec(id int) Record {
	return Record{Kind: KindBatchWait, PID: 4000, BatchID: id, SampleIndex: -1,
		Start: clock.Epoch.Add(time.Duration(id) * time.Millisecond), Dur: time.Millisecond}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(ringRec(i))
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, rec := range snap {
		if rec.BatchID != 6+i {
			t.Fatalf("snapshot[%d].BatchID = %d, want %d (oldest-first order)", i, rec.BatchID, 6+i)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Add(ringRec(i))
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].BatchID != 0 || snap[2].BatchID != 2 {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

func TestRingHooksRecord(t *testing.T) {
	r := NewRing(16)
	h := r.Hooks()
	h.OnOp(4001, 3, 7, "Loader", clock.Epoch, time.Millisecond)
	h.OnBatchPreprocessed(4001, 3, clock.Epoch, 2*time.Millisecond)
	h.OnBatchWait(4000, 3, clock.Epoch, time.Microsecond)
	h.OnBatchConsumed(4000, 3, clock.Epoch, time.Microsecond)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("got %d records", len(snap))
	}
	kinds := []Kind{KindOp, KindBatchPreprocessed, KindBatchWait, KindBatchConsumed}
	for i, k := range kinds {
		if snap[i].Kind != k {
			t.Fatalf("record %d kind %v, want %v", i, snap[i].Kind, k)
		}
	}
	if snap[0].Op != "Loader" || snap[0].SampleIndex != 7 {
		t.Fatalf("op record fields wrong: %+v", snap[0])
	}
	// The snapshot must be consumable by the Chrome exporter.
	if blob, err := ExportChrome(snap, Fine); err != nil || len(blob) == 0 {
		t.Fatalf("ExportChrome over ring snapshot: %v", err)
	}
}

// TestRingHooksPerLogCostParity pins the fix for Ring.Hooks dropping the
// modeled per-record cost: a served run (Ring) must charge the same tracer
// overhead per record as a streamed run (Tracer), or the service
// under-accounts instrumentation interference.
func TestRingHooksPerLogCostParity(t *testing.T) {
	const cost = 200 * time.Microsecond
	r := NewRing(16)
	r.SetPerLogCost(cost)
	tr := NewTracer(discardWriter{}, WithPerLogCost(cost))
	rh, th := r.Hooks(), tr.Hooks()
	if rh.PerLogCost != th.PerLogCost {
		t.Fatalf("Ring.Hooks PerLogCost = %v, Tracer.Hooks PerLogCost = %v; must match", rh.PerLogCost, th.PerLogCost)
	}
	if rh.PerLogCost != cost {
		t.Fatalf("Ring.Hooks PerLogCost = %v, want %v", rh.PerLogCost, cost)
	}
	// The default stays free, like the Tracer's.
	if NewRing(1).Hooks().PerLogCost != 0 {
		t.Fatal("un-configured Ring.Hooks must have zero PerLogCost")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestRingConcurrentAdds(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(ringRec(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("total %d, want 800", r.Total())
	}
	if r.Len() != 64 {
		t.Fatalf("len %d, want 64", r.Len())
	}
}

// TestRingStripedRetention checks the striping invariant across capacities
// with different divisibility: regardless of how many stripes NewRing picks,
// the ring retains exactly the most recent `capacity` records, in insertion
// order.
func TestRingStripedRetention(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 4, 5, 8, 10, 64} {
		r := NewRing(capacity)
		n := 3*capacity + 1 // force wraparound in every stripe
		for i := 0; i < n; i++ {
			r.Add(ringRec(i))
		}
		if r.Len() != capacity {
			t.Fatalf("capacity %d: len %d", capacity, r.Len())
		}
		snap := r.Snapshot()
		if len(snap) != capacity {
			t.Fatalf("capacity %d: snapshot len %d", capacity, len(snap))
		}
		for i, rec := range snap {
			if want := n - capacity + i; rec.BatchID != want {
				t.Fatalf("capacity %d: snapshot[%d].BatchID = %d, want %d",
					capacity, i, rec.BatchID, want)
			}
		}
	}
}

// BenchmarkRingAddParallel measures Add under the contention pattern the
// serving node produces: every connected session's pipeline hooks funnel into
// one shared ring. Before striping, a single ring mutex serialized them all.
func BenchmarkRingAddParallel(b *testing.B) {
	r := NewRing(4096)
	rec := ringRec(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add(rec)
		}
	})
}
