package trace

import (
	"encoding/json"
	"fmt"
	"sort"

	"lotus/internal/clock"
)

// Granularity selects the visualization detail level (§ III-C).
type Granularity int

const (
	// Coarse shows batch-level spans only.
	Coarse Granularity = iota
	// Fine adds the per-operation spans inside each worker row.
	Fine
)

// chromeEvent is one entry in the Chrome Trace Viewer JSON array. Field
// names follow the Trace Event Format the PyTorch profiler also emits.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// mainPIDOf finds the pid that logged wait records (the main process).
func mainPIDOf(records []Record) int {
	for _, r := range records {
		if r.Kind == KindBatchWait || r.Kind == KindBatchConsumed {
			return r.PID
		}
	}
	return 0
}

// BuildChromeEvents converts LotusTrace records to Chrome trace events.
// LotusTrace events carry negative synthetic ids (-(batchID+1)) so they can
// be merged with a PyTorch-profiler trace, whose ids are positive (§ III-C).
func BuildChromeEvents(records []Record, g Granularity) []chromeEvent {
	var events []chromeEvent
	mainPID := mainPIDOf(records)

	us := func(r Record) (float64, float64) {
		return float64(r.Start.Sub(clock.Epoch).Nanoseconds()) / 1e3,
			float64(r.Dur.Nanoseconds()) / 1e3
	}

	pids := map[int]bool{}
	type flowEnd struct{ preEnd, consStart Record }
	flows := map[int]*flowEnd{}

	for _, r := range records {
		pids[r.PID] = true
		ts, dur := us(r)
		switch r.Kind {
		case KindOp:
			if g == Fine {
				events = append(events, chromeEvent{
					Name: "S" + r.Op, Ph: "X", Cat: "preprocessing",
					TS: ts, Dur: dur, PID: r.PID, TID: r.PID,
					ID: -(r.BatchID + 1),
					Args: map[string]any{
						"batch":  r.BatchID,
						"sample": r.SampleIndex,
					},
				})
			}
		case KindBatchPreprocessed:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("SBatchPreprocessed_%d", r.BatchID), Ph: "X", Cat: "batch",
				TS: ts, Dur: dur, PID: r.PID, TID: r.PID, ID: -(r.BatchID + 1),
			})
			f := flows[r.BatchID]
			if f == nil {
				f = &flowEnd{}
				flows[r.BatchID] = f
			}
			f.preEnd = r
		case KindBatchWait:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("SBatchWait_%d", r.BatchID), Ph: "X", Cat: "batch",
				TS: ts, Dur: dur, PID: r.PID, TID: r.PID, ID: -(r.BatchID + 1),
			})
		case KindBatchConsumed:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("SBatchConsumed_%d", r.BatchID), Ph: "X", Cat: "batch",
				TS: ts, Dur: maxFloat(dur, 1), PID: r.PID, TID: r.PID, ID: -(r.BatchID + 1),
			})
			f := flows[r.BatchID]
			if f == nil {
				f = &flowEnd{}
				flows[r.BatchID] = f
			}
			f.consStart = r
		}
	}

	// Data-flow arrows: SBatchPreprocessed end (worker) -> SBatchConsumed
	// start (main).
	var flowIDs []int
	for id := range flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Ints(flowIDs)
	for _, id := range flowIDs {
		f := flows[id]
		if f.preEnd.Dur == 0 && f.preEnd.Start.IsZero() || f.consStart.Start.IsZero() {
			continue
		}
		endTS := float64(f.preEnd.End().Sub(clock.Epoch).Nanoseconds()) / 1e3
		consTS := float64(f.consStart.Start.Sub(clock.Epoch).Nanoseconds()) / 1e3
		events = append(events,
			chromeEvent{
				Name: "batch_flow", Ph: "s", Cat: "dataflow",
				TS: endTS, PID: f.preEnd.PID, TID: f.preEnd.PID, ID: -(id + 1),
			},
			chromeEvent{
				Name: "batch_flow", Ph: "f", BP: "e", Cat: "dataflow",
				TS: consTS, PID: f.consStart.PID, TID: f.consStart.PID, ID: -(id + 1),
			},
		)
	}

	// Process-name metadata rows.
	var pidList []int
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		name := fmt.Sprintf("DataLoader Worker (pid %d)", pid)
		if pid == mainPID {
			name = fmt.Sprintf("Main Process (pid %d)", pid)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: pid,
			Args: map[string]any{"name": name},
		})
	}
	return events
}

// ExportChrome renders records as a standalone Chrome Trace Viewer file.
func ExportChrome(records []Record, g Granularity) ([]byte, error) {
	tr := chromeTrace{
		TraceEvents: BuildChromeEvents(records, g),
		Metadata:    map[string]any{"generator": "lotustrace"},
	}
	return json.MarshalIndent(tr, "", " ")
}

// AugmentChrome merges LotusTrace events into an existing Chrome trace (for
// example one produced by the PyTorch-profiler model), preserving the
// original events. LotusTrace ids are negative, so they cannot collide with
// the profiler's positive ids.
func AugmentChrome(existing []byte, records []Record, g Granularity) ([]byte, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(existing, &doc); err != nil {
		return nil, fmt.Errorf("trace: existing trace is not valid JSON: %w", err)
	}
	var events []json.RawMessage
	if raw, ok := doc["traceEvents"]; ok {
		if err := json.Unmarshal(raw, &events); err != nil {
			return nil, fmt.Errorf("trace: traceEvents is not an array: %w", err)
		}
	}
	for _, ev := range BuildChromeEvents(records, g) {
		b, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		events = append(events, b)
	}
	merged, err := json.Marshal(events)
	if err != nil {
		return nil, err
	}
	if doc == nil {
		doc = map[string]json.RawMessage{}
	}
	doc["traceEvents"] = merged
	return json.MarshalIndent(doc, "", " ")
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
