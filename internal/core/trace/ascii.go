package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTimeline draws the coarse trace as a terminal Gantt chart — one row
// per process, batch spans drawn with their IDs — giving the Figure 2 view
// without Chrome. width is the character budget for the time axis (min 40).
//
// Main-process rows show W (waiting) and C (consuming) markers; worker rows
// show each batch's preprocessing span filled with its ID digits.
func RenderTimeline(records []Record, width int) string {
	if width < 40 {
		width = 40
	}
	if len(records) == 0 {
		return "(empty trace)\n"
	}

	// Time bounds.
	var start, end time.Time
	first := true
	for _, r := range records {
		if r.Kind == KindOp {
			continue
		}
		if first || r.Start.Before(start) {
			start = r.Start
		}
		if first || r.End().After(end) {
			end = r.End()
		}
		first = false
	}
	if first || !end.After(start) {
		return "(no batch records)\n"
	}
	span := end.Sub(start)
	col := func(t time.Time) int {
		c := int(int64(t.Sub(start)) * int64(width) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Group rows by pid.
	type row struct {
		pid   int
		main  bool
		cells []byte
	}
	rows := map[int]*row{}
	mainPID := mainPIDOf(records)
	getRow := func(pid int) *row {
		r, ok := rows[pid]
		if !ok {
			r = &row{pid: pid, main: pid == mainPID, cells: []byte(strings.Repeat(".", width))}
			rows[pid] = r
		}
		return r
	}

	fill := func(r *row, from, to int, label string, pad byte) {
		if to < from {
			to = from
		}
		for c := from; c <= to && c < width; c++ {
			r.cells[c] = pad
		}
		for i := 0; i < len(label) && from+i <= to && from+i < width; i++ {
			r.cells[from+i] = label[i]
		}
	}

	for _, r := range records {
		switch r.Kind {
		case KindBatchPreprocessed:
			w := getRow(r.PID)
			fill(w, col(r.Start), col(r.End()), fmt.Sprintf("%d", r.BatchID), '=')
		case KindBatchWait:
			if r.Dur > span/time.Duration(width) { // only visible waits
				m := getRow(r.PID)
				fill(m, col(r.Start), col(r.End()), "W", 'w')
			}
		case KindBatchConsumed:
			m := getRow(r.PID)
			c := col(r.Start)
			m.cells[c] = 'C'
		}
	}

	// Render: main first, then workers by pid.
	pids := make([]int, 0, len(rows))
	for pid := range rows {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool {
		if (pids[i] == mainPID) != (pids[j] == mainPID) {
			return pids[i] == mainPID
		}
		return pids[i] < pids[j]
	})

	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %v total; %v per column\n", span.Round(time.Millisecond), (span / time.Duration(width)).Round(time.Microsecond))
	for _, pid := range pids {
		r := rows[pid]
		name := fmt.Sprintf("worker %d", pid)
		if r.main {
			name = "main"
		}
		fmt.Fprintf(&b, "%-10s |%s|\n", name, r.cells)
	}
	b.WriteString("legend: ===batch spans (digits = batch id), w/W main waiting, C batch consumed\n")
	return b.String()
}
