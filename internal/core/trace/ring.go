package trace

import (
	"sync"
	"time"

	"lotus/internal/pipeline"
)

// Ring is a bounded, concurrency-safe in-memory recorder of the most recent
// LotusTrace records. Where Tracer streams formatted records to a writer and
// keeps nothing, Ring keeps the records themselves (dropping the oldest once
// full), which is what live observability needs: the preprocessing service's
// /trace endpoint snapshots a Ring and exports it as Chrome Trace JSON while
// the pipeline is still running.
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int   // write position
	full  bool  // buf has wrapped at least once
	total int64 // records ever added
	// perLogCost is propagated into the Hooks so the pipeline charges each
	// record's modeled emission cost to the emitting proc, exactly as
	// Tracer.Hooks does — a served run must not under-account tracer
	// overhead relative to a streamed one.
	perLogCost time.Duration
}

// NewRing returns a ring keeping the most recent capacity records
// (capacity <= 0 is treated as 1).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, capacity)}
}

// SetPerLogCost sets the modeled cost per recorded entry, the Ring analogue
// of the Tracer's WithPerLogCost option. Call before Hooks.
func (r *Ring) SetPerLogCost(d time.Duration) {
	r.mu.Lock()
	r.perLogCost = d
	r.mu.Unlock()
}

// PerLogCost reports the modeled cost per recorded entry.
func (r *Ring) PerLogCost() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perLogCost
}

// Add records one entry, evicting the oldest if the ring is full.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained records, oldest first. The slice is a copy.
func (r *Ring) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many records have ever been added (including evicted
// ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len reports how many records are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Hooks returns pipeline instrumentation callbacks that record into the
// ring — the in-memory analogue of Tracer.Hooks.
func (r *Ring) Hooks() *pipeline.Hooks {
	return &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchPreprocessed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchWait, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchConsumed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		PerLogCost: r.PerLogCost(),
	}
}
