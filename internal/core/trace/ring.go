package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lotus/internal/pipeline"
)

// Ring is a bounded, concurrency-safe in-memory recorder of the most recent
// LotusTrace records. Where Tracer streams formatted records to a writer and
// keeps nothing, Ring keeps the records themselves (dropping the oldest once
// full), which is what live observability needs: the preprocessing service's
// /trace endpoint snapshots a Ring and exports it as Chrome Trace JSON while
// the pipeline is still running.
//
// The ring is striped: a global atomic sequence counter assigns each Add a
// slot round-robin across up to maxRingStripes independently locked
// sub-rings, so concurrent sessions' hook storms contend on an atomic
// increment plus one short per-stripe lock instead of one global mutex —
// Add was a cross-session serialization point when every connected client's
// pipeline hooks funneled into the shared server ring. The stripe count is
// the largest power of two <= min(maxRingStripes, capacity) that divides
// capacity, so the round-robin window aligns with the stripe buffers and
// retention stays exactly the most recent `capacity` records, as the
// single-lock ring kept. Snapshot merges the stripes by sequence number,
// preserving exact insertion order.
type Ring struct {
	seq     atomic.Int64 // next global sequence number == records ever added
	stripes []ringStripe

	mu sync.Mutex // guards perLogCost only
	// perLogCost is propagated into the Hooks so the pipeline charges each
	// record's modeled emission cost to the emitting proc, exactly as
	// Tracer.Hooks does — a served run must not under-account tracer
	// overhead relative to a streamed one.
	perLogCost time.Duration
}

// maxRingStripes bounds the stripe count; 8 keeps per-stripe buffers large
// while covering far more concurrent sessions than a node realistically
// traces at once.
const maxRingStripes = 8

// ringStripe is one independently locked sub-ring. Each record carries its
// global sequence number so Snapshot can restore total order.
type ringStripe struct {
	mu   sync.Mutex
	buf  []Record
	seqs []int64
	next int  // write position
	full bool // buf has wrapped at least once
	// Pad stripes apart so neighboring locks do not share a cache line.
	_ [64]byte
}

// NewRing returns a ring keeping the most recent capacity records
// (capacity <= 0 is treated as 1).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	n := 1
	for n*2 <= maxRingStripes && n*2 <= capacity {
		n *= 2
	}
	for n > 1 && capacity%n != 0 {
		n >>= 1
	}
	r := &Ring{stripes: make([]ringStripe, n)}
	per := capacity / n
	for i := range r.stripes {
		r.stripes[i].buf = make([]Record, per)
		r.stripes[i].seqs = make([]int64, per)
	}
	return r
}

// SetPerLogCost sets the modeled cost per recorded entry, the Ring analogue
// of the Tracer's WithPerLogCost option. Call before Hooks.
func (r *Ring) SetPerLogCost(d time.Duration) {
	r.mu.Lock()
	r.perLogCost = d
	r.mu.Unlock()
}

// PerLogCost reports the modeled cost per recorded entry.
func (r *Ring) PerLogCost() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perLogCost
}

// Add records one entry, evicting the oldest in its stripe if full.
func (r *Ring) Add(rec Record) {
	seq := r.seq.Add(1) - 1
	s := &r.stripes[int(seq)&(len(r.stripes)-1)]
	s.mu.Lock()
	s.buf[s.next] = rec
	s.seqs[s.next] = seq
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Snapshot returns the retained records, oldest first. The slice is a copy.
// Stripes are read one at a time, so records added concurrently with the
// snapshot may or may not appear — fine for live observability, where the
// ring is a moving window anyway.
type seqRecord struct {
	seq int64
	rec Record
}

func (r *Ring) Snapshot() []Record {
	all := make([]seqRecord, 0, r.Len())
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n := s.next
		if s.full {
			n = len(s.buf)
		}
		for j := 0; j < n; j++ {
			all = append(all, seqRecord{seq: s.seqs[j], rec: s.buf[j]})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]Record, len(all))
	for i, sr := range all {
		out[i] = sr.rec
	}
	return out
}

// Total reports how many records have ever been added (including evicted
// ones).
func (r *Ring) Total() int64 {
	return r.seq.Load()
}

// Len reports how many records are currently retained.
func (r *Ring) Len() int {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		if s.full {
			n += len(s.buf)
		} else {
			n += s.next
		}
		s.mu.Unlock()
	}
	return n
}

// Hooks returns pipeline instrumentation callbacks that record into the
// ring — the in-memory analogue of Tracer.Hooks.
func (r *Ring) Hooks() *pipeline.Hooks {
	return &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
		OnBatchPreprocessed: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchPreprocessed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchWait: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchWait, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		OnBatchConsumed: func(pid, batchID int, start time.Time, dur time.Duration) {
			r.Add(Record{Kind: KindBatchConsumed, PID: pid, BatchID: batchID, SampleIndex: -1, Start: start, Dur: dur})
		},
		PerLogCost: r.PerLogCost(),
	}
}
