package trace

import (
	"fmt"
	"sort"
	"time"
)

// Issue is one consistency violation found in a trace log.
type Issue struct {
	// Code identifies the invariant, e.g. "op-outside-batch".
	Code string
	// Detail carries the offending record's coordinates.
	Detail string
}

func (i Issue) String() string { return fmt.Sprintf("%s: %s", i.Code, i.Detail) }

// Validate checks the structural invariants a well-formed LotusTrace log
// satisfies. It catches instrumentation bugs (hooks wired to the wrong
// process, clock regressions, missing records) before analyses silently
// produce nonsense. Checked invariants:
//
//   - no negative durations;
//   - each batch has at most one preprocessing/wait/consumption record, and
//     a consumption implies a preprocessing record;
//   - a batch is consumed only after its preprocessing finished;
//   - wait records come from one single pid (the main process), and
//     preprocessing records never come from that pid;
//   - per-sample op records fall inside their batch's preprocessing span
//     (with tolerance for the per-log emission cost);
//   - batch IDs are consumed in strictly increasing order.
func Validate(records []Record) []Issue {
	var issues []Issue
	add := func(code, format string, args ...any) {
		issues = append(issues, Issue{Code: code, Detail: fmt.Sprintf(format, args...)})
	}

	type batchState struct {
		pre, wait, cons int
		preStart        time.Time
		preEnd          time.Time
		consStart       time.Time
		workerPID       int
	}
	batches := map[int]*batchState{}
	get := func(id int) *batchState {
		b, ok := batches[id]
		if !ok {
			b = &batchState{}
			batches[id] = b
		}
		return b
	}

	mainPID := 0
	var consOrder []int

	for _, r := range records {
		if r.Dur < 0 {
			add("negative-duration", "%s record for batch %d has duration %v", r.Kind.tag(), r.BatchID, r.Dur)
		}
		switch r.Kind {
		case KindBatchPreprocessed:
			b := get(r.BatchID)
			b.pre++
			b.preStart, b.preEnd = r.Start, r.End()
			b.workerPID = r.PID
		case KindBatchWait:
			b := get(r.BatchID)
			b.wait++
			if mainPID == 0 {
				mainPID = r.PID
			} else if r.PID != mainPID {
				add("multiple-main-pids", "wait records from pids %d and %d", mainPID, r.PID)
			}
		case KindBatchConsumed:
			b := get(r.BatchID)
			b.cons++
			b.consStart = r.Start
			consOrder = append(consOrder, r.BatchID)
		}
	}

	ids := make([]int, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := batches[id]
		if b.pre > 1 || b.wait > 1 || b.cons > 1 {
			add("duplicate-batch-records", "batch %d: pre=%d wait=%d cons=%d", id, b.pre, b.wait, b.cons)
		}
		if b.cons > 0 && b.pre == 0 {
			add("consumed-without-preprocessing", "batch %d consumed but never preprocessed", id)
		}
		if b.cons > 0 && b.pre > 0 && b.consStart.Before(b.preEnd) {
			add("consumed-before-ready", "batch %d consumed at %v, preprocessing ended %v",
				id, b.consStart, b.preEnd)
		}
		if mainPID != 0 && b.pre > 0 && b.workerPID == mainPID {
			add("worker-is-main", "batch %d preprocessed by the main pid %d", id, mainPID)
		}
	}

	for i := 1; i < len(consOrder); i++ {
		if consOrder[i] <= consOrder[i-1] {
			add("out-of-order-consumption", "batch %d consumed after batch %d", consOrder[i], consOrder[i-1])
		}
	}

	// Op records inside their batch's preprocessing span. Tolerance covers
	// per-log emission cost charged between an op and its fetch-span close.
	const tol = 5 * time.Millisecond
	for _, r := range records {
		if r.Kind != KindOp {
			continue
		}
		b, ok := batches[r.BatchID]
		if !ok || b.pre == 0 {
			add("op-without-batch", "op %s references batch %d with no preprocessing span", r.Op, r.BatchID)
			continue
		}
		if r.Start.Before(b.preStart.Add(-tol)) || r.End().After(b.preEnd.Add(tol)) {
			add("op-outside-batch", "op %s of batch %d spans [%v, %v], batch spans [%v, %v]",
				r.Op, r.BatchID, r.Start, r.End(), b.preStart, b.preEnd)
		}
	}
	return issues
}
