package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lotus/internal/control"
)

// This file implements the automated log analysis the paper's conclusion
// lists as the next feature: a rule-based advisor that reads a LotusTrace
// log and produces the bottleneck diagnosis a practitioner would otherwise
// assemble by hand from the § V analyses.

// Severity ranks a finding.
type Severity int

const (
	Info Severity = iota
	Warning
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// Finding is one diagnostic produced by the advisor.
type Finding struct {
	Severity Severity
	// Rule identifies the diagnostic, e.g. "preprocessing-bound".
	Rule string
	// Detail is the human-readable explanation with the numbers that fired
	// the rule.
	Detail string
}

// AdvisorConfig tunes the rule thresholds. Zero values take defaults.
type AdvisorConfig struct {
	// LongWait is the wait threshold that indicates GPU stalls (paper: the
	// GPU batch time; 500ms in Figure 5).
	LongWait time.Duration
	// LongDelay flags batches that sat preprocessed without being consumed.
	LongDelay time.Duration
	// HighVariance flags per-batch preprocessing stddev/mean above this.
	HighVariance float64
	// DominantOpShare flags a single operation consuming more than this
	// share of preprocessing CPU time.
	DominantOpShare float64
}

func (c AdvisorConfig) defaults() AdvisorConfig {
	if c.LongWait == 0 {
		c.LongWait = 500 * time.Millisecond
	}
	if c.LongDelay == 0 {
		c.LongDelay = 500 * time.Millisecond
	}
	if c.HighVariance == 0 {
		c.HighVariance = 0.15
	}
	if c.DominantOpShare == 0 {
		c.DominantOpShare = 0.6
	}
	return c
}

// Advise runs every rule over the analysis and returns findings ordered by
// severity (critical first), then rule name.
func (a *Analysis) Advise(cfg AdvisorConfig) []Finding {
	cfg = cfg.defaults()
	var out []Finding

	batches := a.Batches()
	if len(batches) == 0 {
		return []Finding{{Severity: Warning, Rule: "empty-trace",
			Detail: "the log contains no batch records; was tracing enabled on both the Compose and the DataLoader?"}}
	}

	// Rule: preprocessing-bound — large fraction of long main-process waits
	// means the accelerator starves (§ V-C2). The threshold is the shared
	// bottleneck model's: the live controller grows workers at exactly the
	// point this advisor would have told the operator to.
	if frac := a.WaitsOver(cfg.LongWait); frac > control.HighWaitFrac {
		out = append(out, Finding{
			Severity: Critical,
			Rule:     "preprocessing-bound",
			Detail: fmt.Sprintf("the main process waited >%v for %.0f%% of batches; the accelerator is stalling on preprocessing — add data loader workers, move work offline, or cache decoded inputs",
				cfg.LongWait, 100*frac),
		})
	}

	// Rule: gpu-bound — batches consistently sit preprocessed long before
	// consumption (§ V-B, Figure 2 b/c).
	if frac := a.DelaysOver(cfg.LongDelay); frac > 0.5 && a.WaitsOver(cfg.LongWait) < control.StallFreeWaitFrac {
		out = append(out, Finding{
			Severity: Info,
			Rule:     "gpu-bound",
			Detail: fmt.Sprintf("%.0f%% of batches waited >%v after preprocessing before the model consumed them; preprocessing is NOT the bottleneck — worker count could be reduced to reclaim CPU",
				100*frac, cfg.LongDelay),
		})
	}

	// Rule: out-of-order pressure — OOO arrivals from the shared data queue
	// delay ready batches (Takeaway 4).
	if ooo := a.OutOfOrderBatches(); len(ooo) > 0 {
		var worst time.Duration
		for _, b := range batches {
			if b.OutOfOrder() && b.Delay() > worst {
				worst = b.Delay()
			}
		}
		sev := Info
		if float64(len(ooo))/float64(len(batches)) > 0.3 && worst > cfg.LongDelay {
			sev = Warning
		}
		out = append(out, Finding{
			Severity: sev,
			Rule:     "out-of-order-arrivals",
			Detail: fmt.Sprintf("%d/%d batches arrived before they were wanted (worst sat ready for %v); consider smarter index dispatch or batch reordering",
				len(ooo), len(batches), worst.Round(time.Millisecond)),
		})
	}

	// Rule: high per-batch variance — provisioning hazard (Takeaway 3).
	if st := ComputeDistStats(a.PreprocessTimes()); st.N > 4 && st.StdOfMean > cfg.HighVariance {
		out = append(out, Finding{
			Severity: Warning,
			Rule:     "high-batch-variance",
			Detail: fmt.Sprintf("per-batch preprocessing time varies widely (stddev %.0f%% of the %.0fms mean); static worker provisioning will over- or under-shoot",
				100*st.StdOfMean, float64(st.Mean)/1e6),
		})
	}

	// Rule: worker imbalance — one worker does far more than another,
	// usually from size skew under producer dispatch.
	if util := a.WorkerUtilization(); util.Imbalance > 1.5 {
		out = append(out, Finding{
			Severity: Warning,
			Rule:     "worker-imbalance",
			Detail: fmt.Sprintf("busiest worker did %.1fx the work of the least busy across %d workers; size-aware dispatch (DispatchLeastWork with a cost hint) would even the load",
				util.Imbalance, len(util.PerWorker)),
		})
	}

	// Rule: dominant operation — one op eats most preprocessing CPU time;
	// that is where optimization effort should go.
	times := a.OpCPUTime()
	var total time.Duration
	for _, d := range times {
		total += d
	}
	if total > 0 {
		type opShare struct {
			op    string
			share float64
		}
		var shares []opShare
		for op, d := range times {
			shares = append(shares, opShare{op, float64(d) / float64(total)})
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i].share > shares[j].share })
		if shares[0].share > cfg.DominantOpShare {
			out = append(out, Finding{
				Severity: Info,
				Rule:     "dominant-operation",
				Detail: fmt.Sprintf("operation %s accounts for %.0f%% of preprocessing CPU time; profile it at the hardware level with LotusMap before optimizing anything else",
					shares[0].op, 100*shares[0].share),
			})
		}
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// FormatFindings renders findings as a report.
func FormatFindings(fs []Finding) string {
	if len(fs) == 0 {
		return "no findings: the pipeline looks healthy\n"
	}
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "[%-8s] %-22s %s\n", f.Severity, f.Rule, f.Detail)
	}
	return b.String()
}
