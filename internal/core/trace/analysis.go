package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// OpStat summarizes one operation's per-application elapsed times — the
// content of one Table II column.
type OpStat struct {
	Op    string
	Count int
	Total time.Duration
	Mean  time.Duration
	// Std is the population standard deviation of per-application times.
	Std time.Duration
	P90 time.Duration
	// Under10ms / Under100us are the fractions of applications faster than
	// the two thresholds the paper highlights (sampling-profiler blind
	// spots).
	Under10ms  float64
	Under100us float64
}

// BatchInfo joins the per-batch records: the worker's preprocessing span,
// the main process's wait, and the consumption marker.
type BatchInfo struct {
	ID        int
	WorkerPID int
	PreStart  time.Time
	PreDur    time.Duration
	WaitStart time.Time
	WaitDur   time.Duration
	ConsStart time.Time
	ConsDur   time.Duration
}

// PreEnd is when the worker finished preprocessing the batch.
func (b BatchInfo) PreEnd() time.Time { return b.PreStart.Add(b.PreDur) }

// Delay is the time the preprocessed batch sat waiting before the main
// process consumed it — the arrow length in Figure 2, and Figure 5(b)'s
// metric.
func (b BatchInfo) Delay() time.Duration {
	d := b.ConsStart.Sub(b.PreEnd())
	if d < 0 {
		return 0
	}
	return d
}

// OutOfOrder reports whether the batch had already arrived when the main
// process asked for it (logged with the 1 µs no-wait marker).
func (b BatchInfo) OutOfOrder() bool { return b.WaitDur == NoWaitMarker }

// Analysis holds parsed records plus the derived per-batch join.
type Analysis struct {
	Records []Record
	batches []BatchInfo
}

// Analyze builds an Analysis over records.
func Analyze(records []Record) *Analysis {
	a := &Analysis{Records: records}
	byID := map[int]*BatchInfo{}
	order := []int{}
	get := func(id int) *BatchInfo {
		if b, ok := byID[id]; ok {
			return b
		}
		b := &BatchInfo{ID: id}
		byID[id] = b
		order = append(order, id)
		return b
	}
	for _, r := range records {
		switch r.Kind {
		case KindBatchPreprocessed:
			b := get(r.BatchID)
			b.WorkerPID = r.PID
			b.PreStart, b.PreDur = r.Start, r.Dur
		case KindBatchWait:
			b := get(r.BatchID)
			b.WaitStart, b.WaitDur = r.Start, r.Dur
		case KindBatchConsumed:
			b := get(r.BatchID)
			b.ConsStart, b.ConsDur = r.Start, r.Dur
		}
	}
	sort.Ints(order)
	for _, id := range order {
		a.batches = append(a.batches, *byID[id])
	}
	return a
}

// Batches returns the per-batch join, ordered by batch ID.
func (a *Analysis) Batches() []BatchInfo { return a.batches }

// OpStats computes Table II-style statistics per operation name, over
// per-sample op records. Collation (logged per batch with SampleIndex -1)
// is included under its own name.
func (a *Analysis) OpStats() map[string]OpStat {
	durs := map[string][]time.Duration{}
	for _, r := range a.Records {
		if r.Kind == KindOp {
			durs[r.Op] = append(durs[r.Op], r.Dur)
		}
	}
	out := make(map[string]OpStat, len(durs))
	for op, ds := range durs {
		out[op] = opStatFrom(op, ds)
	}
	return out
}

func opStatFrom(op string, ds []time.Duration) OpStat {
	st := OpStat{Op: op, Count: len(ds)}
	if len(ds) == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var under10, under100 int
	var sumsq float64
	for _, d := range sorted {
		st.Total += d
		sumsq += float64(d) * float64(d)
		if d < 10*time.Millisecond {
			under10++
		}
		if d < 100*time.Microsecond {
			under100++
		}
	}
	st.Mean = st.Total / time.Duration(len(sorted))
	mean := float64(st.Mean)
	if v := sumsq/float64(len(sorted)) - mean*mean; v > 0 {
		st.Std = time.Duration(math.Sqrt(v))
	}
	st.P90 = Percentile(sorted, 0.90)
	st.Under10ms = float64(under10) / float64(len(sorted))
	st.Under100us = float64(under100) / float64(len(sorted))
	return st
}

// Percentile returns the p-quantile (0..1) of an ascending-sorted slice
// using nearest-rank interpolation.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// PreprocessTimes returns per-batch preprocessing durations ([T1]) in batch
// order.
func (a *Analysis) PreprocessTimes() []time.Duration {
	out := make([]time.Duration, 0, len(a.batches))
	for _, b := range a.batches {
		if b.PreDur > 0 {
			out = append(out, b.PreDur)
		}
	}
	return out
}

// DistStats summarizes a duration sample: mean, standard deviation, and
// inter-quartile range — the Figure 4 metrics.
type DistStats struct {
	N         int
	Mean      time.Duration
	Std       time.Duration
	P25       time.Duration
	Median    time.Duration
	P75       time.Duration
	IQR       time.Duration
	Min, Max  time.Duration
	StdOfMean float64 // Std/Mean, the paper's "stddev as % of average"
}

// ComputeDistStats summarizes durations.
func ComputeDistStats(ds []time.Duration) DistStats {
	st := DistStats{N: len(ds)}
	if len(ds) == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sumsq float64
	for _, d := range sorted {
		f := float64(d)
		sum += f
		sumsq += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	st.Mean = time.Duration(mean)
	st.Std = time.Duration(math.Sqrt(variance))
	st.P25 = Percentile(sorted, 0.25)
	st.Median = Percentile(sorted, 0.50)
	st.P75 = Percentile(sorted, 0.75)
	st.IQR = st.P75 - st.P25
	st.Min, st.Max = sorted[0], sorted[len(sorted)-1]
	if mean > 0 {
		st.StdOfMean = float64(st.Std) / mean
	}
	return st
}

// WaitsOver returns the fraction of batches whose main-process wait exceeded
// d (Figure 5a).
func (a *Analysis) WaitsOver(d time.Duration) float64 {
	if len(a.batches) == 0 {
		return 0
	}
	n := 0
	for _, b := range a.batches {
		if b.WaitDur > d {
			n++
		}
	}
	return float64(n) / float64(len(a.batches))
}

// DelaysOver returns the fraction of batches whose delay exceeded d
// (Figure 5b).
func (a *Analysis) DelaysOver(d time.Duration) float64 {
	if len(a.batches) == 0 {
		return 0
	}
	n := 0
	for _, b := range a.batches {
		if b.Delay() > d {
			n++
		}
	}
	return float64(n) / float64(len(a.batches))
}

// MaxDelay returns the largest batch delay.
func (a *Analysis) MaxDelay() time.Duration {
	var m time.Duration
	for _, b := range a.batches {
		if d := b.Delay(); d > m {
			m = d
		}
	}
	return m
}

// OutOfOrderBatches lists batch IDs that arrived before they were wanted.
func (a *Analysis) OutOfOrderBatches() []int {
	var out []int
	for _, b := range a.batches {
		if b.OutOfOrder() {
			out = append(out, b.ID)
		}
	}
	return out
}

// TotalCPUSeconds sums worker preprocessing time ([T1] spans) — Figure 6(b)'s
// top-line metric.
func (a *Analysis) TotalCPUSeconds() float64 {
	var total time.Duration
	for _, b := range a.batches {
		total += b.PreDur
	}
	return total.Seconds()
}

// WorkerUtilization reports each worker pid's busy fraction over the span
// from the first to the last preprocessing activity, plus the imbalance
// (max/min busy time). Uneven utilization indicates dispatch skew — the
// effect the least-work policy addresses.
type WorkerUtilization struct {
	PerWorker map[int]float64
	// Imbalance is busiest/least-busy (1.0 = perfectly even; 0 if fewer
	// than two workers).
	Imbalance float64
}

// WorkerUtilization computes per-worker busy fractions from preprocessing
// spans.
func (a *Analysis) WorkerUtilization() WorkerUtilization {
	busy := map[int]time.Duration{}
	var start, end time.Time
	first := true
	for _, b := range a.batches {
		if b.PreDur <= 0 {
			continue
		}
		busy[b.WorkerPID] += b.PreDur
		if first || b.PreStart.Before(start) {
			start = b.PreStart
		}
		if first || b.PreEnd().After(end) {
			end = b.PreEnd()
		}
		first = false
	}
	out := WorkerUtilization{PerWorker: map[int]float64{}}
	span := end.Sub(start)
	if span <= 0 {
		return out
	}
	var min, max time.Duration
	firstW := true
	for pid, d := range busy {
		out.PerWorker[pid] = float64(d) / float64(span)
		if firstW || d < min {
			min = d
		}
		if firstW || d > max {
			max = d
		}
		firstW = false
	}
	if len(busy) >= 2 && min > 0 {
		out.Imbalance = float64(max) / float64(min)
	}
	return out
}

// OpCPUTime sums elapsed time per operation — the series of Figure 6(b) and
// the weights LotusMap's metric splitting uses.
func (a *Analysis) OpCPUTime() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, r := range a.Records {
		if r.Kind == KindOp {
			out[r.Op] += r.Dur
		}
	}
	return out
}

// OpWeights normalizes OpCPUTime over a subset of operations; LotusMap uses
// these to split a shared native function's counters across the Python ops
// it serves (§ IV-B "Splitting Hardware Metrics").
func (a *Analysis) OpWeights(ops []string) map[string]float64 {
	times := a.OpCPUTime()
	var total time.Duration
	for _, op := range ops {
		total += times[op]
	}
	out := make(map[string]float64, len(ops))
	if total == 0 {
		return out
	}
	for _, op := range ops {
		out[op] = float64(times[op]) / float64(total)
	}
	return out
}

// FormatOpStats renders Table II's layout: Avg and P90 rows in ms, plus the
// <10ms and <100µs percentage rows, over the given operation order.
func FormatOpStats(stats map[string]OpStat, order []string) string {
	var b strings.Builder
	ms := func(d time.Duration) string { return fmt.Sprintf("%8.2f", float64(d)/float64(time.Millisecond)) }
	pct := func(f float64) string { return fmt.Sprintf("%8.2f", 100*f) }
	fmt.Fprintf(&b, "%-8s", "")
	for _, op := range order {
		fmt.Fprintf(&b, " %12s", abbreviateOp(op))
	}
	b.WriteString("\n")
	rows := []struct {
		name string
		get  func(OpStat) string
	}{
		{"Avg", func(s OpStat) string { return ms(s.Mean) }},
		{"P90", func(s OpStat) string { return ms(s.P90) }},
		{"<10ms", func(s OpStat) string { return pct(s.Under10ms) }},
		{"<100us", func(s OpStat) string { return pct(s.Under100us) }},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8s", row.name)
		for _, op := range order {
			fmt.Fprintf(&b, " %12s", row.get(stats[op]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// abbreviateOp shortens transform names to the paper's column labels.
func abbreviateOp(op string) string {
	switch op {
	case "RandomResizedCrop":
		return "RRC"
	case "RandomHorizontalFlip":
		return "RHF"
	case "ToTensor":
		return "TT"
	case "RandBalancedCrop":
		return "RBC"
	case "RandomFlip":
		return "RF"
	case "RandomBrightnessAugmentation":
		return "RBA"
	case "GaussianNoise":
		return "GN"
	case "Collate":
		return "C(k)"
	}
	return op
}
