package lotusmap

import (
	"testing"
	"time"

	"lotus/internal/data"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
	"lotus/internal/tensor"
)

func TestRunsNeededMatchesPaperExample(t *testing.T) {
	// Paper § IV-B: f=660µs, s=10ms, C=75% -> 20 runs.
	n := RunsNeeded(0.75, 660*time.Microsecond, 10*time.Millisecond)
	if n != 20 && n != 21 {
		t.Fatalf("RunsNeeded = %d, paper computes ~20", n)
	}
	if got := CaptureProbability(n, 660*time.Microsecond, 10*time.Millisecond); got < 0.75 {
		t.Fatalf("capture probability at n=%d is %.3f < 0.75", n, got)
	}
}

func TestRunsNeededBoundaries(t *testing.T) {
	if n := RunsNeeded(0.75, 20*time.Millisecond, 10*time.Millisecond); n != 1 {
		t.Fatalf("long function needs %d runs, want 1", n)
	}
	if n := RunsNeeded(0.75, 0, 10*time.Millisecond); n != 1 {
		t.Fatalf("degenerate f: %d", n)
	}
	if n := RunsNeeded(0.99, time.Millisecond, 10*time.Millisecond); n <= RunsNeeded(0.5, time.Millisecond, 10*time.Millisecond) {
		t.Fatalf("higher confidence must need more runs (%d)", n)
	}
}

func icCompose() *pipeline.Compose {
	return pipeline.NewCompose(
		&pipeline.Loader{IO: data.IOModel{BaseLatency: 100 * time.Microsecond, BandwidthMBps: 700}},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.5, 0.5, 0.5}, Std: []float32{0.2, 0.2, 0.2}},
	)
}

func icPrototype() pipeline.Sample {
	// A large input, per § IV-B's advice to run short-lived operations with
	// larger inputs so their kernels span enough of the sampling interval.
	return pipeline.Sample{
		Index: 0, FileBytes: 400 << 10, Seed: 12345,
		Width: 1150, Height: 1160, Channels: 3, Dtype: tensor.Uint8,
	}
}

func mapIC(t *testing.T, arch native.Arch, sampler hwsim.SamplerConfig) (*Mapping, *native.Engine, *pipeline.Compose) {
	t.Helper()
	engine := native.NewEngine(arch, native.DefaultCPU())
	cfg := DefaultConfig(sampler, hwsim.DefaultModel(engine.CPU()))
	compose := icCompose()
	return MapPipeline(engine, compose, icPrototype(), cfg), engine, compose
}

func TestMappingRecoversLoaderDecodePath(t *testing.T) {
	m, _, _ := mapIC(t, native.Intel, hwsim.UProfSampler(1))
	loader := map[string]bool{}
	for _, f := range m.Ops["Loader"] {
		loader[f.Symbol] = true
	}
	// The dominant decode kernels must be reconstructed (Table I's rows).
	for _, sym := range []string{"decode_mcu", "jpeg_idct_islow", "ycc_rgb_convert", "ImagingUnpackRGB"} {
		if !loader[sym] {
			t.Errorf("Loader mapping missing %s; got %v", sym, m.Symbols("Loader"))
		}
	}
}

func TestMappingSeparatesOps(t *testing.T) {
	m, _, _ := mapIC(t, native.Intel, hwsim.UProfSampler(2))
	// Resample kernels belong to RandomResizedCrop, not Loader.
	for _, f := range m.Ops["Loader"] {
		if f.Symbol == "ImagingResampleHorizontal_8bpc" {
			t.Fatal("resample kernel leaked into Loader mapping")
		}
	}
	rrc := map[string]bool{}
	for _, f := range m.Ops["RandomResizedCrop"] {
		rrc[f.Symbol] = true
		if f.Symbol == "decode_mcu" {
			t.Fatal("decode kernel leaked into RandomResizedCrop mapping")
		}
	}
	if !rrc["ImagingResampleHorizontal_8bpc"] {
		t.Fatalf("RandomResizedCrop mapping missing resample kernel: %v", m.Symbols("RandomResizedCrop"))
	}
}

func TestMappingQualityAgainstGroundTruth(t *testing.T) {
	m, engine, compose := mapIC(t, native.Intel, hwsim.UProfSampler(3))
	for _, q := range Evaluate(m, engine, compose) {
		if q.Op == "RandomHorizontalFlip" {
			// Branchy, tiny op: recall is inherently probabilistic.
			continue
		}
		if q.Precision < 0.95 {
			t.Errorf("%s precision %.2f (spurious: %v)", q.Op, q.Precision, q.Spurious)
		}
		if q.Op == "Loader" && q.Recall < 0.6 {
			t.Errorf("Loader recall %.2f (missing: %v)", q.Recall, q.Missing)
		}
	}
}

func TestVendorSpecificMappings(t *testing.T) {
	intel, _, _ := mapIC(t, native.Intel, hwsim.UProfSampler(4))
	amd, _, _ := mapIC(t, native.AMD, hwsim.UProfSampler(4))
	has := func(m *Mapping, op, sym string) bool {
		for _, f := range m.Ops[op] {
			if f.Symbol == sym {
				return true
			}
		}
		return false
	}
	if !has(intel, "Loader", "__memcpy_avx_unaligned_erms") {
		t.Error("Intel Loader mapping missing __memcpy_avx_unaligned_erms")
	}
	if has(amd, "Loader", "__memcpy_avx_unaligned_erms") {
		t.Error("AMD mapping contains the Intel memcpy symbol")
	}
	if !has(amd, "Loader", "__memcpy_avx_unaligned") {
		t.Error("AMD Loader mapping missing __memcpy_avx_unaligned")
	}
	if amd.Arch != "amd" || intel.Arch != "intel" {
		t.Errorf("arch labels: %s / %s", intel.Arch, amd.Arch)
	}
}

func TestSleepGapPreventsCrossOpContamination(t *testing.T) {
	// Ablation: with the gap disabled and an aggressive skid, the mapping of
	// a later op picks up functions from the preceding op more often than
	// with the gap enabled.
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	sampler := hwsim.UProfSampler(5)
	sampler.SkidProb = 0.9
	sampler.SkidWindow = 400 * time.Microsecond
	spurious := func(gap time.Duration) int {
		cfg := DefaultConfig(sampler, hwsim.DefaultModel(engine.CPU()))
		cfg.GapSleep = gap
		cfg.MinSupport = 1 // observe raw contamination
		compose := icCompose()
		m := MapPipeline(engine, compose, icPrototype(), cfg)
		count := 0
		truth := map[string]bool{}
		for _, k := range compose.Transforms[3].Kernels() { // ToTensor
			if kk, ok := engine.Kernel(k); ok {
				truth[kk.Symbol] = true
			}
		}
		for _, f := range m.Ops["ToTensor"] {
			if !truth[f.Symbol] {
				count += f.Samples
			}
		}
		return count
	}
	with := spurious(time.Second)
	without := spurious(0)
	if without <= with {
		t.Skipf("no contamination difference observed (with=%d without=%d) — schedule too clean at this seed", with, without)
	}
}

func TestMappingJSONRoundTrip(t *testing.T) {
	m, _, _ := mapIC(t, native.Intel, hwsim.UProfSampler(6))
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMapping(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Arch != m.Arch || len(back.Ops) != len(m.Ops) {
		t.Fatalf("round trip lost data: %d vs %d ops", len(back.Ops), len(m.Ops))
	}
	for op, fs := range m.Ops {
		if len(back.Ops[op]) != len(fs) {
			t.Fatalf("op %s lost functions", op)
		}
	}
	if _, err := DecodeMapping([]byte("{")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestOpsForSymbolSharedFunction(t *testing.T) {
	m := &Mapping{Ops: map[string][]MappedFunc{
		"Loader":            {{Symbol: "__memcpy_avx_unaligned_erms", Library: "libc.so.6"}},
		"RandomResizedCrop": {{Symbol: "ImagingResampleVertical_8bpc", Library: "pil"}},
		"ToTensor":          {{Symbol: "__memcpy_avx_unaligned_erms", Library: "libc.so.6"}},
	}}
	got := m.OpsForSymbol("__memcpy_avx_unaligned_erms", "libc.so.6")
	if len(got) != 2 || got[0] != "Loader" || got[1] != "ToTensor" {
		t.Fatalf("OpsForSymbol = %v", got)
	}
}

func TestAttributeSplitsByWeights(t *testing.T) {
	m := &Mapping{Ops: map[string][]MappedFunc{
		"Loader":   {{Symbol: "memfn", Library: "libc"}, {Symbol: "decode", Library: "libjpeg"}},
		"ToTensor": {{Symbol: "memfn", Library: "libc"}},
	}}
	report := &hwsim.Report{Rows: []hwsim.FuncRow{
		{Symbol: "memfn", Library: "libc", Counters: hwsim.Counters{CPUTime: 100 * time.Millisecond, Instructions: 1000}},
		{Symbol: "decode", Library: "libjpeg", Counters: hwsim.Counters{CPUTime: 50 * time.Millisecond, Instructions: 500}},
		{Symbol: "unrelated", Library: "x", Counters: hwsim.Counters{CPUTime: 7 * time.Millisecond}},
	}}
	weights := map[string]float64{"Loader": 0.75, "ToTensor": 0.25}
	att := Attribute(report, m, weights)

	loader := att.PerOp["Loader"]
	tt := att.PerOp["ToTensor"]
	// memfn splits 75/25; decode goes fully to Loader.
	if loader.CPUTime != 75*time.Millisecond+50*time.Millisecond {
		t.Fatalf("Loader CPU time %v", loader.CPUTime)
	}
	if tt.CPUTime != 25*time.Millisecond {
		t.Fatalf("ToTensor CPU time %v", tt.CPUTime)
	}
	if att.Unmapped.CPUTime != 7*time.Millisecond || len(att.UnmappedSymbols) != 1 {
		t.Fatalf("unmapped %v / %v", att.Unmapped.CPUTime, att.UnmappedSymbols)
	}
	// Counter totals are conserved (mapped rows only).
	if got := loader.Instructions + tt.Instructions; got != 1500 {
		t.Fatalf("instructions not conserved: %v", got)
	}
}

func TestAttributeUniformFallback(t *testing.T) {
	m := &Mapping{Ops: map[string][]MappedFunc{
		"A": {{Symbol: "f", Library: "l"}},
		"B": {{Symbol: "f", Library: "l"}},
	}}
	report := &hwsim.Report{Rows: []hwsim.FuncRow{
		{Symbol: "f", Library: "l", Counters: hwsim.Counters{CPUTime: 10 * time.Millisecond}},
	}}
	att := Attribute(report, m, map[string]float64{}) // no weights known
	if att.PerOp["A"].CPUTime != 5*time.Millisecond || att.PerOp["B"].CPUTime != 5*time.Millisecond {
		t.Fatalf("uniform split wrong: %v / %v", att.PerOp["A"].CPUTime, att.PerOp["B"].CPUTime)
	}
}

func TestMappingStringRendering(t *testing.T) {
	m, _, _ := mapIC(t, native.Intel, hwsim.UProfSampler(7))
	s := m.String()
	if s == "" || len(m.Ops) == 0 {
		t.Fatal("empty mapping rendering")
	}
	att := Attribute(&hwsim.Report{}, m, nil)
	if att.String() == "" {
		t.Fatal("empty attribution rendering")
	}
}
