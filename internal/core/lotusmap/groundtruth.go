package lotusmap

import (
	"sort"
	"time"

	"lotus/internal/core/trace"
	"lotus/internal/hwsim"
	"lotus/internal/native"
)

// This file provides the validation oracle the simulator makes possible:
// because the native recording carries every kernel invocation and the
// LotusTrace log carries every operation span, the *true* per-operation
// hardware counters can be computed exactly, and any attribution scheme can
// be scored against them. The paper had no such oracle — it could only argue
// the splitting heuristic qualitatively (e.g. the 30.21% RandomResizedCrop
// inflation example).

// opSpan is one operation execution interval on one pid.
type opSpan struct {
	start, end time.Time
	op         string
}

// TrueOpCounters joins a native recording with LotusTrace op records: each
// kernel invocation is assigned to the operation whose span covers it on the
// same pid/thread, and the model's counters accumulate per operation.
// Invocations covered by no op span (e.g. ambient work) are summed under "".
func TrueOpCounters(rec *native.Recording, records []trace.Record, model hwsim.Model) map[string]hwsim.Counters {
	spans := map[int][]opSpan{}
	for _, r := range records {
		if r.Kind != trace.KindOp {
			continue
		}
		spans[r.PID] = append(spans[r.PID], opSpan{start: r.Start, end: r.End(), op: r.Op})
	}
	for pid := range spans {
		s := spans[pid]
		sort.Slice(s, func(i, j int) bool { return s[i].start.Before(s[j].start) })
	}

	out := map[string]hwsim.Counters{}
	for _, th := range rec.Threads() {
		tl := rec.Timeline(th)
		ss := spans[th]
		for _, inv := range tl {
			op := opAt(ss, inv.Start)
			c := out[op]
			c.Add(model.InvocationCounters(inv))
			out[op] = c
		}
	}
	return out
}

// opAt finds the op span containing t (spans sorted by start).
func opAt(spans []opSpan, t time.Time) string {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].start.After(t) })
	if i == 0 {
		return ""
	}
	s := spans[i-1]
	if !t.After(s.end) {
		return s.op
	}
	return ""
}

// AttributionError scores an attribution against the oracle: the sum over
// operations of |attributed CPU time − true CPU time|, normalized by the
// total true CPU time. 0 is perfect; 1 means everything landed on the wrong
// operation.
func AttributionError(att *Attribution, truth map[string]hwsim.Counters) float64 {
	var totalTrue, err float64
	ops := map[string]bool{}
	for op := range truth {
		if op != "" {
			ops[op] = true
		}
	}
	for op := range att.PerOp {
		ops[op] = true
	}
	for op := range ops {
		tc := truth[op].CPUTime
		ac := att.PerOp[op].CPUTime
		totalTrue += float64(tc)
		d := float64(ac - tc)
		if d < 0 {
			d = -d
		}
		err += d
	}
	if totalTrue == 0 {
		return 0
	}
	return err / totalTrue
}

// AttributeRefined implements the splitting refinement the paper leaves as
// future work: instead of weighting a shared function's counters by the
// operations' *total* elapsed times, it weights by the expected time each
// operation spends *in that function* — the op's elapsed time multiplied by
// the function's sample share within the op's own isolation profile (the
// "mix of different C/C++ functions in a Python function").
func AttributeRefined(report *hwsim.Report, m *Mapping, opWeights map[string]float64) *Attribution {
	// share[op][symbol@lib] = fraction of op's isolation samples in that
	// function.
	type key struct{ sym, lib string }
	share := map[string]map[key]float64{}
	for op, funcs := range m.Ops {
		total := 0
		for _, f := range funcs {
			total += f.Samples
		}
		if total == 0 {
			continue
		}
		share[op] = make(map[key]float64, len(funcs))
		for _, f := range funcs {
			share[op][key{f.Symbol, f.Library}] = float64(f.Samples) / float64(total)
		}
	}

	att := &Attribution{PerOp: make(map[string]hwsim.Counters)}
	for _, row := range report.Rows {
		ops := m.OpsForSymbol(row.Symbol, row.Library)
		if len(ops) == 0 {
			att.Unmapped.Add(row.Counters)
			att.UnmappedSymbols = append(att.UnmappedSymbols, row.Symbol)
			continue
		}
		k := key{row.Symbol, row.Library}
		var total float64
		weights := make([]float64, len(ops))
		for i, op := range ops {
			weights[i] = opWeights[op] * share[op][k]
			total += weights[i]
		}
		for i, op := range ops {
			s := 1.0 / float64(len(ops))
			if total > 0 {
				s = weights[i] / total
			}
			c := att.PerOp[op]
			c.Add(row.Counters.Scale(s))
			att.PerOp[op] = c
		}
	}
	sort.Strings(att.UnmappedSymbols)
	return att
}
