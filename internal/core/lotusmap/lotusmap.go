// Package lotusmap implements LotusMap: the methodology that reconstructs
// the mapping from framework-level preprocessing operations to the native
// (C/C++) functions they execute, using only what a hardware profiler can
// observe, and then uses the mapping plus LotusTrace elapsed-time weights to
// attribute function-granularity hardware counters to operations.
//
// The reconstruction follows § IV-B of the paper:
//
//   - each operation is profiled in isolation behind ITT-style
//     resume/pause gating (Listing 4), after warm-up iterations;
//   - sleep gaps are inserted before each collection window so sample skid
//     cannot pull the previous operation's functions into the bucket;
//   - short-lived or branch-dependent functions are caught by running the
//     operation n times, with n chosen from the capture-probability formula
//     C >= 1 - (1 - f/s)^n;
//   - functions from runtime/OS libraries and functions without support
//     across runs are filtered out.
//
// Because the simulator knows the true transform→kernel map (which the
// profiler never sees), the package's tests measure the reconstruction's
// precision and recall — a validation the paper could only argue indirectly.
package lotusmap

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"lotus/internal/clock"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

// RunsNeeded returns the smallest number of runs n such that a function
// spanning f within a sampling interval s is captured at least once with
// probability >= confidence: C >= 1-(1-f/s)^n (§ IV-B). f >= s needs one
// run; degenerate inputs return 1.
func RunsNeeded(confidence float64, f, s time.Duration) int {
	if f <= 0 || s <= 0 || confidence <= 0 {
		return 1
	}
	if f >= s {
		return 1
	}
	p := float64(f) / float64(s)
	if confidence >= 1 {
		confidence = 0.999999
	}
	n := math.Log(1-confidence) / math.Log(1-p)
	if n < 1 {
		return 1
	}
	return int(math.Ceil(n))
}

// CaptureProbability returns 1-(1-f/s)^n, the chance n runs catch the
// function at least once.
func CaptureProbability(n int, f, s time.Duration) float64 {
	if f <= 0 || s <= 0 || n <= 0 {
		return 0
	}
	p := float64(f) / float64(s)
	if p > 1 {
		p = 1
	}
	return 1 - math.Pow(1-p, float64(n))
}

// MappedFunc is one reconstructed native function for an operation — a row
// of Table I.
type MappedFunc struct {
	Symbol  string `json:"function"`
	Library string `json:"library"`
	// Support is the number of isolation runs in which the function was
	// sampled.
	Support int `json:"support"`
	// Samples is the total sample count across runs.
	Samples int `json:"samples"`
}

// Mapping is the reconstructed operation→functions map (the
// mapping_funcs.json artifact).
type Mapping struct {
	Arch string                  `json:"arch"`
	Ops  map[string][]MappedFunc `json:"ops"`
	// Runs records how many isolation runs each op was profiled with.
	Runs map[string]int `json:"runs"`
}

// OpsForSymbol returns the operations whose mapping contains symbol@library.
func (m *Mapping) OpsForSymbol(symbol, library string) []string {
	var out []string
	for op, funcs := range m.Ops {
		for _, f := range funcs {
			if f.Symbol == symbol && f.Library == library {
				out = append(out, op)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Symbols returns the mapped symbols for one op, sorted by sample count
// descending (Table I ordering).
func (m *Mapping) Symbols(op string) []MappedFunc {
	fs := append([]MappedFunc(nil), m.Ops[op]...)
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Samples != fs[j].Samples {
			return fs[i].Samples > fs[j].Samples
		}
		return fs[i].Symbol < fs[j].Symbol
	})
	return fs
}

// MarshalJSON-friendly persistence helpers.
func (m *Mapping) Encode() ([]byte, error) { return json.MarshalIndent(m, "", " ") }

// DecodeMapping parses a persisted mapping.
func DecodeMapping(b []byte) (*Mapping, error) {
	var m Mapping
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("lotusmap: bad mapping JSON: %w", err)
	}
	return &m, nil
}

// String renders the mapping in Table I's layout.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transformation -> Function (Library), arch=%s\n", m.Arch)
	ops := make([]string, 0, len(m.Ops))
	for op := range m.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "%s (runs=%d)\n", op, m.Runs[op])
		for _, f := range m.Symbols(op) {
			fmt.Fprintf(&b, "    %-40s %-48s support=%d samples=%d\n", f.Symbol, f.Library, f.Support, f.Samples)
		}
	}
	return b.String()
}

// Config tunes the mapping methodology.
type Config struct {
	// Sampler is the hardware profiler's sampling configuration (VTune-like
	// 10 ms or uProf-like 1 ms).
	Sampler hwsim.SamplerConfig
	// Model derives counters from invocations.
	Model hwsim.Model
	// Warmups is the number of unprofiled iterations before collection
	// (Listing 4 warms up 4 times).
	Warmups int
	// Confidence is the target capture probability for the run-count
	// formula (the paper's example uses 0.75).
	Confidence float64
	// MinRuns / MaxRuns bound the computed run count.
	MinRuns, MaxRuns int
	// GapSleep is the idle gap inserted before each collection window to
	// defeat sample skid. Zero disables the trick (the ablation case).
	GapSleep time.Duration
	// MinSupport drops functions sampled in fewer runs (noise filter).
	MinSupport int
	// MinSupportFrac additionally requires a function to appear in at least
	// this fraction of runs. Genuine kernels recur across runs of the same
	// operation; ambient noise (allocator locks, scheduler calls) does not,
	// even when it lives in an allowed library like libc.
	MinSupportFrac float64
	// TargetSpan is the minimum isolated-op duration the mapper aims for:
	// operations shorter than it are re-run with inflated inputs (the
	// § IV-B "run with a larger input" remedy for short-lived operations).
	// Zero means 4x the sampling interval.
	TargetSpan time.Duration
	// FilterLibraries drops functions from runtime/OS libraries that can
	// never be preprocessing work (interpreter, kernel, CUDA driver).
	FilterLibraries []string
}

// DefaultConfig returns the paper-calibrated methodology for the given
// profiler configuration.
func DefaultConfig(sampler hwsim.SamplerConfig, model hwsim.Model) Config {
	return Config{
		Sampler:        sampler,
		Model:          model,
		Warmups:        4,
		Confidence:     0.75,
		MinRuns:        12,
		MaxRuns:        60,
		GapSleep:       time.Second,
		MinSupport:     2,
		MinSupportFrac: 0.15,
		FilterLibraries: []string{
			"python3.10", "vmlinux", "libcuda.so.1",
		},
	}
}

func (c Config) filtered(lib string) bool {
	for _, f := range c.FilterLibraries {
		if f == lib {
			return true
		}
	}
	return false
}

// MapPipeline reconstructs the mapping for every transform of the compose
// chain, profiling each in isolation on a fresh virtual-time clock. The
// prototype sample provides the input geometry (a representative dataset
// record); per-run inputs vary by run index so branch-dependent kernels are
// eventually exercised.
func MapPipeline(engine *native.Engine, compose *pipeline.Compose, prototype pipeline.Sample, cfg Config) *Mapping {
	m := &Mapping{
		Arch: engine.Arch().String(),
		Ops:  make(map[string][]MappedFunc),
		Runs: make(map[string]int),
	}
	for i := range compose.Transforms {
		op := compose.Transforms[i]
		funcs, runs := mapOneOp(engine, compose, i, prototype, cfg)
		m.Ops[op.Name()] = funcs
		m.Runs[op.Name()] = runs
	}
	return m
}

// mapOneOp profiles compose.Transforms[opIdx] in isolation.
func mapOneOp(engine *native.Engine, compose *pipeline.Compose, opIdx int, prototype pipeline.Sample, cfg Config) ([]MappedFunc, int) {
	op := compose.Transforms[opIdx]
	target := cfg.TargetSpan
	if target <= 0 {
		target = 4 * cfg.Sampler.Interval
	}

	sim := clock.NewSim()
	sess := hwsim.NewSession(engine)
	defer engine.Detach()

	runs := cfg.MinRuns
	sim.Run("lotusmap", func(p clock.Proc) {
		ctx := &pipeline.Ctx{
			Proc:   p,
			Engine: engine,
			Thread: &native.Thread{ID: 1},
			Mode:   pipeline.Simulated,
			Seed:   int64(opIdx) * 7919,
		}
		engine.BeginWork()
		defer engine.EndWork()

		// Calibration (collection paused): measure the isolated op's span
		// and, if it is shorter than the target, inflate its input
		// geometry — § IV-B's "run the operation with a larger input"
		// remedy for short-lived operations. Branchy ops are measured a few
		// times and judged by their longest span.
		factor := 1
		var span time.Duration
		for {
			span = 0
			for r := 0; r < 4; r++ {
				in := inflate(prepareInput(ctx, compose, opIdx, prototype, r), factor)
				t0 := p.Now()
				op.Apply(ctx, in)
				if d := p.Now().Sub(t0); d > span {
					span = d
				}
			}
			if span >= target || factor >= 64 {
				break
			}
			factor *= 2
		}

		// Size the run count from the capture formula, targeting functions
		// down to 1/16 of the op's span.
		runs = RunsNeeded(cfg.Confidence, span/16, cfg.Sampler.Interval)
		if runs < cfg.MinRuns {
			runs = cfg.MinRuns
		}
		if runs > cfg.MaxRuns {
			runs = cfg.MaxRuns
		}

		for run := 0; run < runs; run++ {
			in := inflate(prepareInput(ctx, compose, opIdx, prototype, run), factor)
			// Warm-up applications outside any collection window.
			for w := 0; w < cfg.Warmups; w++ {
				op.Apply(ctx, in)
			}
			// The sleep gap prevents skid from attributing preceding work
			// into the window (§ IV-B "Miscellaneous Instrumentation
			// Tricks").
			if cfg.GapSleep > 0 {
				p.Sleep(cfg.GapSleep)
			}
			sess.Resume(p.Now())
			op.Apply(ctx, in)
			sess.Pause(p.Now())
			if cfg.GapSleep > 0 {
				p.Sleep(cfg.GapSleep)
			}
		}
	})
	sess.Detach(sim.Now())

	// Sample each collection window independently to build per-run support.
	sampler := hwsim.NewSampler(cfg.Sampler, cfg.Model)
	type agg struct {
		support int
		samples int
		library string
	}
	byFunc := map[string]*agg{}
	for _, w := range sess.Windows() {
		samples := sampler.Run(sess.Recording(), []hwsim.TimeRange{w})
		seen := map[string]bool{}
		for _, smp := range samples {
			if cfg.filtered(smp.Library) {
				continue
			}
			key := smp.Symbol + "\x00" + smp.Library
			a := byFunc[key]
			if a == nil {
				a = &agg{library: smp.Library}
				byFunc[key] = a
			}
			a.samples++
			if !seen[key] {
				seen[key] = true
				a.support++
			}
		}
	}

	minSupport := cfg.MinSupport
	if frac := int(math.Ceil(cfg.MinSupportFrac * float64(runs))); frac > minSupport {
		minSupport = frac
	}
	var out []MappedFunc
	for key, a := range byFunc {
		if a.support < minSupport {
			continue
		}
		sym := key[:strings.IndexByte(key, 0)]
		out = append(out, MappedFunc{Symbol: sym, Library: a.library, Support: a.support, Samples: a.samples})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out, runs
}

// inflate scales a sample's geometry by sqrt(factor) per spatial axis so
// the total element count grows ~linearly with factor. Meta samples carry
// no buffers, so inflation is free.
func inflate(s pipeline.Sample, factor int) pipeline.Sample {
	if factor <= 1 {
		return s
	}
	mul := 1
	for mul*mul < factor {
		mul *= 2
	}
	s.Width *= mul
	s.Height *= mul
	if s.Depth > 0 {
		s.Depth *= mul
	}
	s.FileBytes *= factor
	return s
}

// prepareInput builds the target op's input by applying the preceding
// transforms (unprofiled) to a per-run variant of the prototype sample.
func prepareInput(ctx *pipeline.Ctx, compose *pipeline.Compose, opIdx int, prototype pipeline.Sample, run int) pipeline.Sample {
	s := prototype
	s.Index = prototype.Index + run // varies branch randomness across runs
	s.Seed = prototype.Seed + int64(run)
	for i := 0; i < opIdx; i++ {
		s = compose.Transforms[i].Apply(ctx, s)
	}
	return s
}

// Quality compares a reconstructed mapping against the pipeline's ground
// truth (resolving logical kernel names to arch symbols via the engine) and
// reports precision/recall per op.
type Quality struct {
	Op        string
	Precision float64
	Recall    float64
	Missing   []string // ground-truth symbols not reconstructed
	Spurious  []string // reconstructed symbols not in ground truth
}

// Evaluate computes mapping quality for every op in the compose chain.
func Evaluate(m *Mapping, engine *native.Engine, compose *pipeline.Compose) []Quality {
	var out []Quality
	for _, t := range compose.Transforms {
		truth := map[string]bool{}
		for _, kname := range t.Kernels() {
			if k, ok := engine.Kernel(kname); ok {
				truth[k.Symbol] = true
			}
		}
		got := map[string]bool{}
		for _, f := range m.Ops[t.Name()] {
			got[f.Symbol] = true
		}
		q := Quality{Op: t.Name()}
		tp := 0
		for sym := range got {
			if truth[sym] {
				tp++
			} else {
				q.Spurious = append(q.Spurious, sym)
			}
		}
		for sym := range truth {
			if !got[sym] {
				q.Missing = append(q.Missing, sym)
			}
		}
		if len(got) > 0 {
			q.Precision = float64(tp) / float64(len(got))
		}
		if len(truth) > 0 {
			q.Recall = float64(tp) / float64(len(truth))
		}
		sort.Strings(q.Missing)
		sort.Strings(q.Spurious)
		out = append(out, q)
	}
	return out
}
