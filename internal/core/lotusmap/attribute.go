package lotusmap

import (
	"fmt"
	"sort"
	"strings"

	"lotus/internal/hwsim"
)

// Attribution is the end product of combining LotusTrace and LotusMap: PMU
// counters per preprocessing operation (Figure 6 e–h), plus whatever the
// mapping could not place.
type Attribution struct {
	PerOp map[string]hwsim.Counters
	// Unmapped accumulates rows whose symbol maps to no operation
	// (background functions, filtered libraries).
	Unmapped hwsim.Counters
	// UnmappedSymbols lists those symbols for inspection.
	UnmappedSymbols []string
}

// Attribute splits each function row of a full-run hardware profile across
// the operations that map to it, weighting by the operations' LotusTrace
// elapsed times (§ IV-B "Splitting Hardware Metrics"): a function shared by
// Loader, RandomResizedCrop and ToTensor contributes to Loader in proportion
// L/(L+RRC+TT).
func Attribute(report *hwsim.Report, m *Mapping, opWeights map[string]float64) *Attribution {
	att := &Attribution{PerOp: make(map[string]hwsim.Counters)}
	for _, row := range report.Rows {
		ops := m.OpsForSymbol(row.Symbol, row.Library)
		if len(ops) == 0 {
			att.Unmapped.Add(row.Counters)
			att.UnmappedSymbols = append(att.UnmappedSymbols, row.Symbol)
			continue
		}
		var total float64
		for _, op := range ops {
			total += opWeights[op]
		}
		for _, op := range ops {
			share := 1.0 / float64(len(ops))
			if total > 0 {
				share = opWeights[op] / total
			}
			c := att.PerOp[op]
			c.Add(row.Counters.Scale(share))
			att.PerOp[op] = c
		}
	}
	sort.Strings(att.UnmappedSymbols)
	return att
}

// String renders per-op counters as an aligned table.
func (a *Attribution) String() string {
	var b strings.Builder
	ops := make([]string, 0, len(a.PerOp))
	for op := range a.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(&b, "%-28s %12s %14s %14s %10s %10s %28s\n",
		"operation", "cpu_time", "instructions", "uops_deliv", "fe_bound", "dram_bound", "topdown ret/bs/fe/be")
	for _, op := range ops {
		c := a.PerOp[op]
		td := c.TopDown()
		fmt.Fprintf(&b, "%-28s %12v %14.3g %14.3g %9.1f%% %9.1f%% %9s\n",
			op, c.CPUTime.Round(1e6), c.Instructions, c.UopsDelivered,
			100*c.FrontEndBoundFrac(), 100*c.DRAMBoundFrac(),
			fmt.Sprintf("%.0f/%.0f/%.0f/%.0f%%", 100*td.Retiring, 100*td.BadSpeculation, 100*td.FrontEndBound, 100*td.BackEndBound))
	}
	if len(a.UnmappedSymbols) > 0 {
		fmt.Fprintf(&b, "unmapped: %d symbols, cpu_time %v\n", len(a.UnmappedSymbols), a.Unmapped.CPUTime.Round(1e6))
	}
	return b.String()
}
