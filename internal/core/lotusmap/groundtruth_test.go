package lotusmap

import (
	"testing"
	"time"

	"lotus/internal/clock"
	"lotus/internal/core/trace"
	"lotus/internal/data"
	"lotus/internal/hwsim"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

// tracedEpoch runs a small IC epoch with both a native recording and
// in-memory LotusTrace records, returning everything attribution needs.
func tracedEpoch(t *testing.T, workers int) (*native.Engine, *native.Recording, []trace.Record, []string, hwsim.TimeRange) {
	t.Helper()
	engine := native.NewEngine(native.Intel, native.DefaultCPU())
	rec := native.NewRecording()
	engine.Attach(rec)

	var records []trace.Record
	hooks := &pipeline.Hooks{
		OnOp: func(pid, batchID, sampleIndex int, op string, start time.Time, dur time.Duration) {
			records = append(records, trace.Record{Kind: trace.KindOp, PID: pid, BatchID: batchID, SampleIndex: sampleIndex, Op: op, Start: start, Dur: dur})
		},
	}

	sim := clock.NewSim()
	ds := data.NewImageDataset(data.ImageNetConfig(120, 1))
	c := pipeline.NewCompose(
		&pipeline.Loader{IO: data.DefaultIO()},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.5, 0.5, 0.5}, Std: []float32{0.2, 0.2, 0.2}},
	)
	c.Hooks = hooks
	dl := pipeline.NewDataLoader(sim, pipeline.NewImageFolder(ds, c), pipeline.Config{
		BatchSize: 12, NumWorkers: workers, Seed: 1, Hooks: hooks,
		Mode: pipeline.Simulated, Engine: engine,
	})
	sim.Run("main", func(p clock.Proc) {
		it := dl.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
		}
	})
	engine.Detach()
	window := hwsim.TimeRange{Start: clock.Epoch, End: clock.Epoch.Add(sim.Elapsed())}
	ops := []string{"Loader", "RandomResizedCrop", "RandomHorizontalFlip", "ToTensor", "Normalize", "Collate"}
	return engine, rec, records, ops, window
}

func TestTrueOpCountersCoverAllWork(t *testing.T) {
	engine, rec, records, _, _ := tracedEpoch(t, 2)
	model := hwsim.DefaultModel(engine.CPU())
	truth := TrueOpCounters(rec, records, model)

	if truth["Loader"].CPUTime == 0 || truth["RandomResizedCrop"].CPUTime == 0 {
		t.Fatalf("oracle missing major ops: %v", truth)
	}
	// Every invocation belongs to exactly one op (or ""): per-op CPU sums to
	// the recording's total modeled CPU time.
	var total, sum time.Duration
	for _, th := range rec.Threads() {
		for _, inv := range rec.Timeline(th) {
			total += inv.Dur
		}
	}
	for _, c := range truth {
		sum += c.CPUTime
	}
	if diff := sum - total; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("oracle CPU %v != recorded %v", sum, total)
	}
	// Collate is a batch-level op but still logged; its kernels must be
	// attributed to it, not lost.
	if truth["Collate"].CPUTime == 0 {
		t.Fatal("collate work not attributed by the oracle")
	}
	if unassigned := truth[""]; unassigned.CPUTime > total/100 {
		t.Fatalf("%v of kernel time outside any op span", unassigned.CPUTime)
	}
}

func TestRefinedAttributionBeatsBasicOnSharedKernels(t *testing.T) {
	engine, rec, records, ops, window := tracedEpoch(t, 2)
	model := hwsim.DefaultModel(engine.CPU())

	// Reconstruct the mapping including collation.
	spec := pipeline.NewCompose(
		&pipeline.Loader{IO: data.DefaultIO()},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.5, 0.5, 0.5}, Std: []float32{0.2, 0.2, 0.2}},
		&pipeline.CollateN{N: 12},
	)
	cfg := DefaultConfig(hwsim.UProfSampler(5), model)
	proto := pipeline.Sample{Index: 0, FileBytes: 300 << 10, Seed: 99, Width: 1000, Height: 1000, Channels: 3}
	mapping := MapPipeline(engine, spec, proto, cfg)

	// Function-granularity profile of the whole epoch.
	sampler := hwsim.UProfSampler(6)
	sampler.NoiseProb = 0
	samples := hwsim.NewSampler(sampler, model).Run(rec, []hwsim.TimeRange{window})
	report := hwsim.BuildReport(samples, "uprof", native.Intel)

	weights := trace.Analyze(records).OpWeights(ops)
	truth := TrueOpCounters(rec, records, model)

	basic := Attribute(report, mapping, weights)
	refined := AttributeRefined(report, mapping, weights)

	eBasic := AttributionError(basic, truth)
	eRefined := AttributionError(refined, truth)
	t.Logf("attribution error: basic=%.3f refined=%.3f", eBasic, eRefined)
	if eRefined > eBasic+0.02 {
		t.Fatalf("refined attribution (%.3f) should not be worse than basic (%.3f)", eRefined, eBasic)
	}
	if eBasic > 0.8 {
		t.Fatalf("basic attribution error %.3f implausibly high — mapping or weights broken", eBasic)
	}
}

func TestAttributionErrorMetric(t *testing.T) {
	truth := map[string]hwsim.Counters{
		"A": {CPUTime: 100 * time.Millisecond},
		"B": {CPUTime: 100 * time.Millisecond},
	}
	perfect := &Attribution{PerOp: map[string]hwsim.Counters{
		"A": {CPUTime: 100 * time.Millisecond},
		"B": {CPUTime: 100 * time.Millisecond},
	}}
	if e := AttributionError(perfect, truth); e != 0 {
		t.Fatalf("perfect attribution error %v", e)
	}
	swapped := &Attribution{PerOp: map[string]hwsim.Counters{
		"A": {CPUTime: 200 * time.Millisecond},
		"B": {},
	}}
	if e := AttributionError(swapped, truth); e != 1 {
		t.Fatalf("fully-misattributed error %v, want 1", e)
	}
	if e := AttributionError(&Attribution{PerOp: map[string]hwsim.Counters{}}, nil); e != 0 {
		t.Fatalf("empty error %v", e)
	}
}

func TestOpAtBoundaries(t *testing.T) {
	spans := []opSpan{
		{start: clock.Epoch, end: clock.Epoch.Add(time.Millisecond), op: "A"},
		{start: clock.Epoch.Add(2 * time.Millisecond), end: clock.Epoch.Add(3 * time.Millisecond), op: "B"},
	}
	cases := []struct {
		at   time.Duration
		want string
	}{
		{0, "A"},
		{time.Millisecond, "A"}, // inclusive end
		{1500 * time.Microsecond, ""},
		{2500 * time.Microsecond, "B"},
		{10 * time.Millisecond, ""},
	}
	for _, c := range cases {
		if got := opAt(spans, clock.Epoch.Add(c.at)); got != c.want {
			t.Errorf("opAt(+%v) = %q, want %q", c.at, got, c.want)
		}
	}
}
