package lotusmap

import (
	"testing"
	"testing/quick"
	"time"

	"lotus/internal/hwsim"
)

// TestPropertyRunsNeededSatisfiesConfidence: for any (C, f, s) the computed
// run count really achieves the requested capture probability, and one fewer
// run would not (tightness).
func TestPropertyRunsNeededSatisfiesConfidence(t *testing.T) {
	if err := quick.Check(func(cRaw, fRaw, sRaw uint16) bool {
		confidence := 0.5 + float64(cRaw%45)/100 // 0.50..0.94
		s := time.Duration(sRaw%20000+100) * time.Microsecond
		f := time.Duration(fRaw%10000+1) * time.Microsecond
		if f > s {
			f = s / 2
		}
		n := RunsNeeded(confidence, f, s)
		if CaptureProbability(n, f, s) < confidence-1e-9 {
			return false
		}
		if n > 1 && CaptureProbability(n-1, f, s) >= confidence {
			return false // not minimal
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCaptureProbabilityMonotone in n and in f.
func TestPropertyCaptureProbabilityMonotone(t *testing.T) {
	if err := quick.Check(func(fRaw uint16, nRaw uint8) bool {
		s := 10 * time.Millisecond
		f := time.Duration(fRaw%9000+1) * time.Microsecond
		n := int(nRaw%50) + 1
		if CaptureProbability(n+1, f, s) < CaptureProbability(n, f, s) {
			return false
		}
		f2 := f + time.Microsecond
		return CaptureProbability(n, f2, s) >= CaptureProbability(n, f, s)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAttributionConservesCounters: for any mapping and weights, the
// per-op attributed counters plus the unmapped remainder equal the report's
// totals — attribution redistributes, never invents or loses events.
func TestPropertyAttributionConservesCounters(t *testing.T) {
	ops := []string{"A", "B", "C"}
	syms := []string{"f1", "f2", "f3", "f4", "f5"}
	if err := quick.Check(func(assign [5]uint8, wRaw [3]uint8, cpu [5]uint16) bool {
		m := &Mapping{Ops: map[string][]MappedFunc{}}
		for i, sym := range syms {
			// Each symbol maps to a pseudo-random subset of ops.
			for j, op := range ops {
				if assign[i]&(1<<j) != 0 {
					m.Ops[op] = append(m.Ops[op], MappedFunc{Symbol: sym, Library: "l", Samples: int(assign[i]) + 1})
				}
			}
		}
		weights := map[string]float64{}
		for j, op := range ops {
			weights[op] = float64(wRaw[j]%10) / 10
		}
		report := &hwsim.Report{}
		var total time.Duration
		for i, sym := range syms {
			d := time.Duration(cpu[i]) * time.Microsecond
			total += d
			report.Rows = append(report.Rows, hwsim.FuncRow{
				Symbol: sym, Library: "l",
				Counters: hwsim.Counters{CPUTime: d, Instructions: float64(cpu[i])},
			})
		}
		for _, attribute := range []func(*hwsim.Report, *Mapping, map[string]float64) *Attribution{Attribute, AttributeRefined} {
			att := attribute(report, m, weights)
			var sum time.Duration
			for _, c := range att.PerOp {
				sum += c.CPUTime
			}
			sum += att.Unmapped.CPUTime
			diff := sum - total
			if diff < -time.Microsecond || diff > time.Microsecond {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMappingJSONRoundTrip over randomized mappings.
func TestPropertyMappingJSONRoundTrip(t *testing.T) {
	if err := quick.Check(func(nOps uint8, support, samples uint8) bool {
		m := &Mapping{Arch: "intel", Ops: map[string][]MappedFunc{}, Runs: map[string]int{}}
		for i := 0; i < int(nOps%5)+1; i++ {
			op := string(rune('A' + i))
			m.Ops[op] = []MappedFunc{{Symbol: "s" + op, Library: "l", Support: int(support), Samples: int(samples)}}
			m.Runs[op] = int(support) + 1
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		back, err := DecodeMapping(b)
		if err != nil || back.Arch != m.Arch || len(back.Ops) != len(m.Ops) {
			return false
		}
		for op, fs := range m.Ops {
			if len(back.Ops[op]) != len(fs) || back.Ops[op][0] != fs[0] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
