// Package autotune searches DataLoader configurations using LotusTrace's
// signals rather than end-to-end time alone — the optimization direction the
// paper motivates (tf.data's AUTOTUNE and Plumber pick parallelism from
// aggregate statistics; Takeaway 5 shows why the worker count is non-trivial:
// more workers keep cutting epoch time with diminishing returns while total
// CPU time climbs).
//
// The tuner runs candidate worker counts on the virtual clock and reads
// three trace-level signals per run:
//
//   - the fraction of batches the main process waited long for (still
//     preprocessing-bound? keep scaling),
//   - accelerator utilization (saturated? stop — more workers only burn CPU),
//   - total preprocessing CPU seconds (the budget the extra workers cost).
//
// An e2e-only tuner cannot distinguish "no improvement because the GPU is
// now the bottleneck" from "no improvement because of noise"; the trace
// signals make the stopping decision explicit.
//
// The classification and selection rules live in internal/control — this
// package is the offline driver of the same bottleneck model the live
// controller closes its loop with.
package autotune

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"lotus/internal/control"
	"lotus/internal/core/trace"
	"lotus/internal/workloads"
)

// Config tunes the search.
type Config struct {
	// MinWorkers / MaxWorkers bound the search space.
	MinWorkers, MaxWorkers int
	// CPUBudgetSeconds caps the preprocessing CPU seconds a configuration
	// may consume per epoch (0 = unlimited).
	CPUBudgetSeconds float64
	// Tolerance stops the search when doubling the workers improves epoch
	// time by less than this fraction (default 0.08).
	Tolerance float64
	// TunePrefetch additionally evaluates prefetch factors {1, 4} around
	// the chosen worker count.
	TunePrefetch bool
	// LongWait classifies a batch wait as a stall (default 500ms).
	LongWait time.Duration
}

func (c Config) defaults() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 32
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.08
	}
	if c.LongWait <= 0 {
		c.LongWait = 500 * time.Millisecond
	}
	return c
}

// Step is one evaluated configuration — the shared model's Sample, produced
// here by a virtual-clock run instead of live counters.
type Step = control.Sample

// Result is the tuning outcome.
type Result struct {
	Best       Step
	Steps      []Step
	StopReason string
}

// String renders the search trajectory.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %9s %12s %10s %9s %12s\n", "workers", "prefetch", "e2e", "cpu_sec", "gpu_util", "waits>thr")
	for _, s := range r.Steps {
		marker := " "
		if s == r.Best {
			marker = "*"
		}
		pf := s.Prefetch
		if pf == 0 {
			pf = 2
		}
		fmt.Fprintf(&b, "%s%7d %9d %12v %10.1f %8.1f%% %11.1f%%\n",
			marker, s.Workers, pf, s.E2E.Round(time.Millisecond), s.CPUSeconds, 100*s.GPUUtil, 100*s.LongWaitFrac)
	}
	fmt.Fprintf(&b, "stopped: %s; chose %d workers\n", r.StopReason, r.Best.Workers)
	return b.String()
}

// evaluate runs one candidate (workers, prefetch) configuration on the
// virtual clock and extracts the model's signals (prefetch 0 keeps the
// spec's own setting).
func evaluate(spec workloads.Spec, workers, prefetch int, longWait time.Duration) Step {
	spec.NumWorkers = workers
	if prefetch > 0 {
		spec.Prefetch = prefetch
	}
	var buf bytes.Buffer
	tr := trace.NewTracer(&buf)
	stats, _, _ := spec.Run(tr.Hooks())
	_ = tr.Flush()
	recs, err := trace.ReadLog(&buf)
	if err != nil {
		panic(fmt.Sprintf("autotune: unparseable trace: %v", err))
	}
	a := trace.Analyze(recs)
	return Step{
		Workers:      workers,
		Prefetch:     prefetch,
		E2E:          stats.Elapsed,
		CPUSeconds:   a.TotalCPUSeconds(),
		GPUUtil:      stats.GPUUtilization(),
		LongWaitFrac: a.WaitsOver(longWait),
	}
}

// Tune searches worker counts by doubling while the bottleneck model says
// the pipeline is still preprocessing-bound, then refines between the last
// two candidates. The returned Best is control.SelectCheapest's pick: the
// cheapest configuration (fewest CPU seconds) within Tolerance of the best
// epoch time and within the CPU budget.
func Tune(spec workloads.Spec, cfg Config) Result {
	cfg = cfg.defaults()
	res := Result{}

	withinBudget := func(s Step) bool {
		return cfg.CPUBudgetSeconds <= 0 || s.CPUSeconds <= cfg.CPUBudgetSeconds
	}

	// Phase 1: doubling, with the stopping decision delegated to the shared
	// bottleneck classification.
	w := cfg.MinWorkers
	var prev *Step
	for {
		step := evaluate(spec, w, 0, cfg.LongWait)
		res.Steps = append(res.Steps, step)
		if !withinBudget(step) {
			res.StopReason = fmt.Sprintf("CPU budget exceeded at %d workers (%.1fs > %.1fs)",
				w, step.CPUSeconds, cfg.CPUBudgetSeconds)
			break
		}
		if verdict := control.Classify(step); verdict == control.BottleneckAccelerator {
			res.StopReason = fmt.Sprintf("accelerator saturated at %d workers (%.0f%% utilization)", w, 100*step.GPUUtil)
			break
		} else if verdict == control.BottleneckBalanced {
			res.StopReason = fmt.Sprintf("stalls eliminated at %d workers", w)
			break
		}
		if prev != nil {
			improve := 1 - float64(step.E2E)/float64(prev.E2E)
			if improve < cfg.Tolerance {
				res.StopReason = fmt.Sprintf("diminishing returns at %d workers (%.1f%% improvement)", w, 100*improve)
				break
			}
		}
		if w >= cfg.MaxWorkers {
			res.StopReason = fmt.Sprintf("search bound reached (%d workers)", w)
			break
		}
		prev = &res.Steps[len(res.Steps)-1]
		w *= 2
		if w > cfg.MaxWorkers {
			w = cfg.MaxWorkers
		}
	}

	// Phase 2: refine between the last two candidates if they straddle the
	// stopping point.
	if n := len(res.Steps); n >= 2 {
		lo, hi := res.Steps[n-2].Workers, res.Steps[n-1].Workers
		if mid := (lo + hi) / 2; mid != lo && mid != hi {
			res.Steps = append(res.Steps, evaluate(spec, mid, 0, cfg.LongWait))
		}
	}

	// Phase 3: with the worker count chosen provisionally, try the
	// prefetch-factor knob around the default (tf.data tunes buffer sizes
	// the same way). Prefetch only matters when variance causes stalls, so
	// evaluate just the immediate neighbors.
	if cfg.TunePrefetch {
		provisional := res.Steps[len(res.Steps)-1].Workers
		for _, pf := range []int{1, 4} {
			res.Steps = append(res.Steps, evaluate(spec, provisional, pf, cfg.LongWait))
		}
	}

	// Selection: the shared rule — cheapest CPU within tolerance of the
	// fastest in-budget run.
	chosen := control.SelectCheapest(res.Steps, cfg.Tolerance, cfg.CPUBudgetSeconds)
	inBudget := false
	for _, s := range res.Steps {
		if withinBudget(s) {
			inBudget = true
			break
		}
	}
	if !inBudget {
		res.StopReason += "; no configuration met the CPU budget"
	}
	res.Best = res.Steps[chosen]
	return res
}
