package autotune

import (
	"strings"
	"testing"

	"lotus/internal/workloads"
)

func icSpec(samples int) workloads.Spec {
	spec := workloads.ICSpec(samples, 1)
	spec.BatchSize, spec.GPUs = 64, 4
	return spec
}

func TestTuneScalesUpPreprocessingBoundPipeline(t *testing.T) {
	res := Tune(icSpec(1280), Config{MinWorkers: 1, MaxWorkers: 16})
	if res.Best.Workers < 4 {
		t.Fatalf("IC is preprocessing-bound at 1 worker; tuner chose only %d\n%s", res.Best.Workers, res)
	}
	// The chosen config must be dramatically faster than the 1-worker run.
	first := res.Steps[0]
	if float64(res.Best.E2E) > 0.6*float64(first.E2E) {
		t.Fatalf("tuned e2e %v vs 1-worker %v — insufficient improvement\n%s", res.Best.E2E, first.E2E, res)
	}
	if res.StopReason == "" {
		t.Fatal("missing stop reason")
	}
}

func TestTuneStopsEarlyWhenGPUBound(t *testing.T) {
	// IS is GPU-bound even with few workers: the trace signals (high GPU
	// utilization, no long waits) let the tuner stop without sweeping.
	spec := workloads.ISSpec(32, 1)
	res := Tune(spec, Config{MinWorkers: 2, MaxWorkers: 16})
	if len(res.Steps) > 3 {
		t.Fatalf("tuner evaluated %d configs for a GPU-bound pipeline; signals should stop it immediately\n%s",
			len(res.Steps), res)
	}
	if res.Best.Workers > 4 {
		t.Fatalf("GPU-bound pipeline needs few workers, tuner chose %d", res.Best.Workers)
	}
	if !strings.Contains(res.StopReason, "saturated") && !strings.Contains(res.StopReason, "stalls eliminated") {
		t.Fatalf("stop reason should cite the trace signal, got %q", res.StopReason)
	}
}

func TestTuneRespectsCPUBudget(t *testing.T) {
	unbounded := Tune(icSpec(1280), Config{MinWorkers: 1, MaxWorkers: 16})
	floor := unbounded.Steps[0].CPUSeconds // 1 worker = cheapest possible
	if unbounded.Best.CPUSeconds <= floor {
		t.Skipf("scaling did not raise CPU cost (%.1f vs %.1f); nothing to budget", unbounded.Best.CPUSeconds, floor)
	}
	// A budget between the 1-worker cost and the unbounded choice's cost
	// must be honored.
	budget := (floor + unbounded.Best.CPUSeconds) / 2
	bounded := Tune(icSpec(1280), Config{MinWorkers: 1, MaxWorkers: 16, CPUBudgetSeconds: budget})
	if bounded.Best.CPUSeconds > budget {
		t.Fatalf("chosen config costs %.1fs CPU, budget %.1fs\n%s", bounded.Best.CPUSeconds, budget, bounded)
	}

	// An impossible budget falls back to the cheapest configuration and
	// says so.
	impossible := Tune(icSpec(1280), Config{MinWorkers: 2, MaxWorkers: 8, CPUBudgetSeconds: 0.001})
	if !strings.Contains(impossible.StopReason, "no configuration met the CPU budget") {
		t.Fatalf("impossible budget should be reported, got %q", impossible.StopReason)
	}
}

func TestTunePrefersCheapestWithinTolerance(t *testing.T) {
	res := Tune(icSpec(1280), Config{MinWorkers: 1, MaxWorkers: 16, Tolerance: 0.10})
	// The best step must be the cheapest among steps within 10% of the
	// fastest e2e.
	var fastest float64
	for _, s := range res.Steps {
		if fastest == 0 || float64(s.E2E) < fastest {
			fastest = float64(s.E2E)
		}
	}
	for _, s := range res.Steps {
		if float64(s.E2E) <= fastest*1.10 && s.CPUSeconds < res.Best.CPUSeconds-1e-9 {
			t.Fatalf("step %d workers (%.1fs CPU) is within tolerance and cheaper than chosen %d (%.1fs)\n%s",
				s.Workers, s.CPUSeconds, res.Best.Workers, res.Best.CPUSeconds, res)
		}
	}
}

func TestTuneRenderedTrajectory(t *testing.T) {
	res := Tune(icSpec(640), Config{MinWorkers: 1, MaxWorkers: 8})
	out := res.String()
	if !strings.Contains(out, "workers") || !strings.Contains(out, "stopped:") {
		t.Fatalf("rendering incomplete:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("rendering should mark the chosen configuration")
	}
}

func TestTuneDefaults(t *testing.T) {
	cfg := Config{}.defaults()
	if cfg.MinWorkers != 1 || cfg.MaxWorkers != 32 || cfg.Tolerance <= 0 || cfg.LongWait <= 0 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestTunePrefetchKnob(t *testing.T) {
	res := Tune(icSpec(640), Config{MinWorkers: 2, MaxWorkers: 8, TunePrefetch: true})
	pfTried := map[int]bool{}
	for _, s := range res.Steps {
		pfTried[s.Prefetch] = true
	}
	if !pfTried[1] || !pfTried[4] {
		t.Fatalf("prefetch candidates not evaluated: %v\n%s", pfTried, res)
	}
	if !strings.Contains(res.String(), "prefetch") {
		t.Fatal("rendering missing prefetch column")
	}
}
