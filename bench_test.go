package lotus_test

// The benchmark harness: one testing.B benchmark per paper table and figure
// (running the corresponding experiment end to end at test scale — the full
// paper-scale pass is `go run ./cmd/lotus-bench`), plus microbenchmarks for
// the substrate pieces whose costs matter to the tool itself (tracer record
// emission, the simulated scheduler, the pixel codecs, the sampler).

import (
	"bytes"
	"io"
	"testing"
	"time"

	"lotus"
	"lotus/internal/clock"
	"lotus/internal/experiments"
	"lotus/internal/hwsim"
	"lotus/internal/imaging"
	"lotus/internal/native"
	"lotus/internal/pipeline"
)

// --- one benchmark per paper artifact ---

func benchExperiment(b *testing.B, id string) {
	exp, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := exp.Run(experiments.Small)
		if res.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkTable1Mapping(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2OpStats(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkFig2Traces(b *testing.B)           { benchExperiment(b, "fig2") }
func BenchmarkFig3OutOfOrder(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4Variance(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5WaitDelay(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6HardwareStudy(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig6AMDHardwareStudy(b *testing.B) { benchExperiment(b, "fig6amd") }
func BenchmarkTable3Overheads(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4Functionality(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkExtensionsStudies(b *testing.B)    { benchExperiment(b, "extensions") }

// --- instrumentation cost (the tool's own overhead claim) ---

// BenchmarkTracerEmit measures the cost of one LotusTrace record emission —
// the quantity behind the paper's "per-log overhead" and Table III's ~0%.
func BenchmarkTracerEmit(b *testing.B) {
	tr := lotus.NewTracer(io.Discard)
	h := tr.Hooks()
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.OnOp(4001, i>>7, i, "RandomResizedCrop", start, time.Millisecond)
	}
}

// BenchmarkTracedEpochOverhead runs the same simulated epoch with and
// without tracing; the reported metric is interesting relative to
// BenchmarkUntracedEpoch.
func BenchmarkTracedEpochOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		tr := lotus.NewTracer(&buf)
		spec := lotus.ICWorkload(512, 1)
		spec.Run(tr.Hooks())
	}
}

func BenchmarkUntracedEpoch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := lotus.ICWorkload(512, 1)
		spec.Run(nil)
	}
}

// --- substrate microbenchmarks ---

func BenchmarkSimClockContextSwitch(b *testing.B) {
	sim := clock.NewSim()
	b.ReportAllocs()
	b.ResetTimer()
	sim.Run("root", func(p clock.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
}

func BenchmarkSimQueueHandoff(b *testing.B) {
	sim := clock.NewSim()
	q := clock.NewQueue[int](sim, 8)
	b.ResetTimer()
	sim.Run("root", func(p clock.Proc) {
		p.Go("producer", func(p clock.Proc) {
			for i := 0; i < b.N; i++ {
				q.Put(p, i)
			}
			q.Close()
		})
		p.Go("consumer", func(p clock.Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
			}
		})
	})
}

func BenchmarkSJPGDecode(b *testing.B) {
	im := imaging.SynthesizeImage(224, 224, 1)
	blob := imaging.EncodeSJPG(im, 85)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := imaging.DecodeSJPG(blob)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkSJPGEncode(b *testing.B) {
	im := imaging.SynthesizeImage(224, 224, 1)
	b.SetBytes(int64(im.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.EncodeSJPG(im, 85)
	}
}

func BenchmarkBilinearResize(b *testing.B) {
	im := imaging.SynthesizeImage(512, 512, 2)
	b.SetBytes(int64(im.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.Resize(im, 224, 224).Release()
	}
}

func BenchmarkFlipHorizontal(b *testing.B) {
	im := imaging.SynthesizeImage(224, 224, 3)
	b.SetBytes(int64(im.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.FlipHorizontal(im).Release()
	}
}

func BenchmarkCrop(b *testing.B) {
	im := imaging.SynthesizeImage(512, 512, 4)
	b.SetBytes(int64(224 * 224 * 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.Crop(im, 96, 96, 224, 224).Release()
	}
}

// BenchmarkComposeICSample pushes one full IC sample through Compose in real
// mode — decode, RandomResizedCrop, flip, tensor conversion, normalize on
// actual pixels — the per-sample cost a real-data DataLoader worker pays.
// The loader's I/O model is zeroed so the pixel path is what is measured.
func BenchmarkComposeICSample(b *testing.B) {
	compose := pipeline.NewCompose(
		&pipeline.Loader{},
		&pipeline.RandomResizedCrop{Size: 224},
		&pipeline.RandomHorizontalFlip{},
		&pipeline.ToTensor{},
		&pipeline.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	b.ReportAllocs()
	clock.NewReal().Run("bench", func(p clock.Proc) {
		ctx := &pipeline.Ctx{Proc: p, Mode: pipeline.RealData, Seed: 1, MaterializeDim: 256}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := pipeline.Sample{Index: i, Seed: int64(i), Width: 500, Height: 375, FileBytes: 111 << 10, Channels: 3}
			s = compose.Apply(ctx, 4001, 0, s)
			if s.Tensor == nil {
				b.Fatal("compose produced no tensor")
			}
		}
	})
}

func BenchmarkNativeExec(b *testing.B) {
	e := native.NewEngine(native.Intel, native.DefaultCPU())
	th := &native.Thread{ID: 1, Cursor: clock.Epoch}
	calls := []native.Call{
		{Kernel: "decode_mcu", Bytes: 111 << 10},
		{Kernel: "jpeg_idct_islow", Bytes: 1 << 20},
		{Kernel: "ycc_rgb_convert", Bytes: 1 << 20},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Exec(th, calls)
	}
}

func BenchmarkSamplerOverTimeline(b *testing.B) {
	e := native.NewEngine(native.Intel, native.DefaultCPU())
	rec := native.NewRecording()
	e.Attach(rec)
	th := &native.Thread{ID: 1, Cursor: clock.Epoch}
	for i := 0; i < 2000; i++ {
		e.Exec(th, []native.Call{{Kernel: "decode_mcu", Bytes: 64 << 10}})
	}
	e.Detach()
	windows := []hwsim.TimeRange{{Start: clock.Epoch, End: th.Cursor}}
	s := hwsim.NewSampler(hwsim.VTuneSampler(1), hwsim.DefaultModel(e.CPU()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(rec, windows)
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationMappingSingleRun vs BenchmarkAblationMappingMultiRun:
// the run-count formula's cost/benefit (recall measured in tests; here the
// time cost of the extra runs).
func BenchmarkAblationMappingSingleRun(b *testing.B) { benchMappingRuns(b, 1) }
func BenchmarkAblationMappingMultiRun(b *testing.B)  { benchMappingRuns(b, 0) } // formula-chosen

func benchMappingRuns(b *testing.B, forceRuns int) {
	engine := lotus.NewEngine(lotus.Intel)
	spec := lotus.ICWorkload(4, 1)
	cfg := lotus.DefaultMapConfig(lotus.VTuneSampler(1), lotus.DefaultHWModel(engine))
	if forceRuns > 0 {
		cfg.MinRuns, cfg.MaxRuns = forceRuns, forceRuns
	}
	proto := spec.Prototype()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lotus.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
	}
}

// Sleep-gap bucketing on vs off (mis-attribution consequences are tested in
// lotusmap; this reports the time cost of the gaps, which is ~zero in
// virtual time).
func BenchmarkAblationMappingNoGap(b *testing.B) {
	engine := lotus.NewEngine(lotus.Intel)
	spec := lotus.ICWorkload(4, 1)
	cfg := lotus.DefaultMapConfig(lotus.VTuneSampler(1), lotus.DefaultHWModel(engine))
	cfg.GapSleep = 0
	proto := spec.Prototype()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lotus.MapPipeline(engine, spec.MappingCompose(), proto, cfg)
	}
}
