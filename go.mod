module lotus

go 1.22
