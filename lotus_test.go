package lotus_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lotus"
)

// TestPublicAPIQuickstart exercises the documented facade flow end to end:
// build a pipeline, trace an epoch, analyze, visualize.
func TestPublicAPIQuickstart(t *testing.T) {
	clk := lotus.NewSimClock()
	var buf bytes.Buffer
	tracer := lotus.NewTracer(&buf)
	hooks := tracer.Hooks()

	compose := lotus.NewCompose(
		&lotus.Loader{IO: lotus.DefaultIO()},
		&lotus.RandomResizedCrop{Size: 224},
		&lotus.RandomHorizontalFlip{},
		&lotus.ToTensor{},
		&lotus.Normalize{Mean: []float32{0.485, 0.456, 0.406}, Std: []float32{0.229, 0.224, 0.225}},
	)
	compose.Hooks = hooks
	dataset := lotus.NewImageFolder(lotus.NewImageDataset(lotus.ImageNetConfig(60, 1)), compose)
	loader := lotus.NewDataLoader(clk, dataset, lotus.LoaderConfig{
		BatchSize:  10,
		NumWorkers: 2,
		Seed:       1,
		Hooks:      hooks,
		Mode:       lotus.Simulated,
		Engine:     lotus.NewEngine(lotus.Intel),
	})

	consumed := 0
	clk.Run("main", func(p lotus.Proc) {
		it := loader.Start(p)
		for {
			if _, ok := it.Next(p); !ok {
				break
			}
			consumed++
		}
	})
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if consumed != 6 {
		t.Fatalf("consumed %d batches", consumed)
	}

	analysis := lotus.Analyze(lotus.MustReadLog(&buf))
	if len(analysis.Batches()) != 6 {
		t.Fatalf("analysis sees %d batches", len(analysis.Batches()))
	}
	if analysis.OpStats()["Loader"].Count != 60 {
		t.Fatalf("Loader count %d", analysis.OpStats()["Loader"].Count)
	}
	viz, err := lotus.ExportChrome(analysis.Records, lotus.Coarse)
	if err != nil || !bytes.Contains(viz, []byte("SBatchPreprocessed_0")) {
		t.Fatalf("chrome export broken: %v", err)
	}
}

// TestPublicAPIHardwareFlow exercises mapping + attribution via the facade.
func TestPublicAPIHardwareFlow(t *testing.T) {
	engine := lotus.NewEngine(lotus.AMD)
	spec := lotus.ICWorkload(4, 1)
	cfg := lotus.DefaultMapConfig(lotus.UProfSampler(1), lotus.DefaultHWModel(engine))
	cfg.MaxRuns = 15
	proto := spec.Prototype()
	proto.Width *= 2
	proto.Height *= 2
	proto.FileBytes *= 4
	m := lotus.MapPipeline(engine, spec.Compose(nil), proto, cfg)
	if len(m.Ops["Loader"]) == 0 {
		t.Fatal("empty Loader mapping")
	}
	q := lotus.EvaluateMapping(m, engine, spec.Compose(nil))
	if len(q) == 0 {
		t.Fatal("no quality rows")
	}
	if n := lotus.RunsNeeded(0.75, 660*time.Microsecond, 10*time.Millisecond); n < 15 || n > 25 {
		t.Fatalf("RunsNeeded = %d", n)
	}
}

// TestPublicAPIExperiments checks the registry round trip.
func TestPublicAPIExperiments(t *testing.T) {
	if len(lotus.Experiments()) != 11 {
		t.Fatalf("%d experiments", len(lotus.Experiments()))
	}
	exp, ok := lotus.LookupExperiment("table4")
	if !ok {
		t.Fatal("table4 missing")
	}
	out := exp.Run(lotus.ScaleSmall).Render()
	if !strings.Contains(out, "Lotus") {
		t.Fatal("table4 render broken")
	}
}
